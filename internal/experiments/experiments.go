package experiments

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"dmx/internal/dmxsys"
	"dmx/internal/workload"
)

// Concurrencies is the paper's co-running application sweep.
var Concurrencies = []int{1, 5, 10, 15}

// geomean of a positive series.
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var acc float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		acc += math.Log(x)
	}
	return math.Exp(acc / float64(len(xs)))
}

// baseSuite caches the paper-scale suite: constructing it generates the
// full synthetic corpora (compressing 16 MB tables, sealing 10 MB of
// ciphertext, RLE-encoding frames), which need happen only once.
var baseSuite struct {
	once    sync.Once
	benches []*workload.Benchmark
	err     error
}

// suite returns n app instances cycling through the five benchmarks in
// Table I order.
func suite(n int) ([]*workload.Benchmark, error) {
	baseSuite.once.Do(func() {
		baseSuite.benches, baseSuite.err = workload.Suite(workload.PaperScale)
	})
	if baseSuite.err != nil {
		return nil, baseSuite.err
	}
	base := baseSuite.benches
	out := make([]*workload.Benchmark, n)
	for i := range out {
		out[i] = base[i%len(base)]
	}
	return out, nil
}

// Warm front-loads the two process-wide caches that a parallel sweep
// would otherwise serialize on (or duplicate work into): the paper-scale
// benchmark suite — whose corpora generation is itself parallelized
// inside workload.Suite — and the DRX compile/timing cache for every
// distinct restructuring kernel, including the Fig. 16 three-kernel
// extension, compiled concurrently on the sweep worker pool. Calling
// Warm is optional: every generator computes what it needs on demand.
func Warm() error {
	benches, err := suite(5)
	if err != nil {
		return err
	}
	pipes := make([]*dmxsys.Pipeline, 0, len(benches)+1)
	for _, b := range benches {
		pipes = append(pipes, b.Pipeline)
	}
	pirner, err := workload.PIRWithNER(workload.PaperScale)
	if err != nil {
		return err
	}
	pipes = append(pipes, pirner.Pipeline)
	return dmxsys.WarmDRXTimes(dmxsys.DefaultConfig(dmxsys.BumpInTheWire).DRX, pipes)
}

// nbJob is one (concurrency, benchmark) sweep cell — the inner-loop
// unit most figures parallelize over.
type nbJob struct {
	n     int
	bench *workload.Benchmark
}

// nbJobs enumerates Concurrencies × benches in the figures' original
// nesting order (concurrency outer, benchmark inner), so index-slotted
// results fold back identically to the sequential loops they replace.
func nbJobs(benches []*workload.Benchmark) []nbJob {
	jobs := make([]nbJob, 0, len(Concurrencies)*len(benches))
	for _, n := range Concurrencies {
		for _, bench := range benches {
			jobs = append(jobs, nbJob{n: n, bench: bench})
		}
	}
	return jobs
}

// homogeneous returns n instances of one benchmark (the paper's
// per-benchmark bars measure n co-running copies of that application).
func homogeneous(bench *workload.Benchmark, n int) []*workload.Benchmark {
	copies := make([]*workload.Benchmark, n)
	for i := range copies {
		copies[i] = bench
	}
	return copies
}

// runSystem simulates n concurrent instances of the given benchmarks
// under a placement.
func runSystem(p dmxsys.Placement, benches []*workload.Benchmark) (dmxsys.RunReport, error) {
	cfg := dmxsys.DefaultConfig(p)
	return runSystemCfg(cfg, benches)
}

func runSystemCfg(cfg dmxsys.Config, benches []*workload.Benchmark) (dmxsys.RunReport, error) {
	pipes := make([]*dmxsys.Pipeline, len(benches))
	for i, b := range benches {
		pipes[i] = b.Pipeline
	}
	sys, err := dmxsys.New(cfg, pipes)
	if err != nil {
		return dmxsys.RunReport{}, err
	}
	return sys.Run()
}

// perBenchmark collapses a run's apps to geometric means per benchmark
// name (several instances of the same benchmark co-run at high
// concurrency).
func perBenchmark(rep dmxsys.RunReport) map[string]float64 {
	acc := make(map[string][]float64)
	for _, a := range rep.Apps {
		acc[a.App] = append(acc[a.App], a.Total.Seconds())
	}
	out := make(map[string]float64, len(acc))
	for name, xs := range acc {
		out[name] = geomean(xs)
	}
	return out
}

// table is a tiny fixed-width text table builder shared by Render
// methods.
type table struct {
	b      strings.Builder
	widths []int
}

func newTable(title string, headers ...string) *table {
	t := &table{}
	t.b.WriteString(title)
	t.b.WriteByte('\n')
	t.widths = make([]int, len(headers))
	for i, h := range headers {
		t.widths[i] = len(h) + 2
		if t.widths[i] < 12 {
			t.widths[i] = 12
		}
	}
	t.row(headers...)
	return t
}

func (t *table) row(cells ...string) {
	for i, c := range cells {
		w := 12
		if i < len(t.widths) {
			w = t.widths[i]
		}
		fmt.Fprintf(&t.b, "%-*s", w, c)
	}
	t.b.WriteByte('\n')
}

func (t *table) rowf(format string, args ...any) {
	fmt.Fprintf(&t.b, format, args...)
	t.b.WriteByte('\n')
}

func (t *table) String() string { return t.b.String() }

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
