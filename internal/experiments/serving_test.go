package experiments

import (
	"strings"
	"testing"
)

// TestLoadCurveShape asserts the serving figure's two contracts: below
// capacity the achieved rate tracks the offered rate, and at saturation
// the plateau matches the AppReport.Throughput bound within 1%.
func TestLoadCurveShape(t *testing.T) {
	res, err := Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 5 {
		t.Fatalf("%d curves, want 5", len(res.Curves))
	}
	for _, c := range res.Curves {
		if c.Capacity <= 0 {
			t.Errorf("%s: non-positive capacity bound", c.Bench)
			continue
		}
		if c.SaturationErr > 0.01 {
			t.Errorf("%s: saturation plateau %.2f%% off the capacity bound (want <=1%%)",
				c.Bench, 100*c.SaturationErr)
		}
		for _, p := range c.Points {
			if p.Fraction < 1.0 {
				// Under capacity: the open loop keeps up with the offered
				// rate (measured-rate discretization allows a small gap).
				if rel := (p.Offered - p.Achieved) / p.Offered; rel > 0.02 {
					t.Errorf("%s at %.2fx: achieved %.4g lags offered %.4g",
						c.Bench, p.Fraction, p.Achieved, p.Offered)
				}
			} else if p.Fraction >= 1.5 {
				// Overload: latency is queueing-dominated, so the tail must
				// sit well above the unloaded point's latency.
				if p.P99 <= 2*c.Points[0].P99 {
					t.Errorf("%s at %.2fx: p99 %v shows no queueing growth over %v",
						c.Bench, p.Fraction, p.P99, c.Points[0].P99)
				}
			}
		}
	}
	if !strings.Contains(res.Render(), "capacity bound") {
		t.Error("render missing capacity bound line")
	}
}
