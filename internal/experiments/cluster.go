package experiments

import (
	"fmt"

	"dmx/internal/cluster"
	"dmx/internal/dmxsys"
	"dmx/internal/sim"
	"dmx/internal/sweep"
	"dmx/internal/traffic"
	"dmx/internal/workload"
)

// The cluster experiment is the fleet scaling figure: saturate a
// replicated bump-in-the-wire serving system with an open-loop arrival
// train far above one host's capacity and sweep the host count. The
// whole fleet shares one deterministic engine (replicas of one
// dmxsys.Plan behind the cluster router), so each point is a single
// event-ordered simulation and the curve is byte-identical at any sweep
// worker count.
//
// Throughput scales near-linearly while replicas are the bottleneck,
// then bends where the modeled network core saturates: the core link is
// provisioned to carry about clusterCoreHosts hosts' worth of request
// payload, so the 8-host point is network-bound — the cross-domain
// analogue of the paper's shared-uplink bottleneck (Sec. III), one
// level up the hierarchy.

// clusterHosts is the fleet-size axis.
var clusterHosts = []int{1, 2, 4, 8}

const (
	// clusterRequests is the per-point request count.
	clusterRequests = 192
	// clusterOverdrive is the offered rate in multiples of a single
	// host's analytic capacity bound: high enough that even 8 replicas
	// stay saturated for the whole run.
	clusterOverdrive = 16.0
	// clusterCoreHosts provisions the network core in units of one
	// host's payload rate: the scaling curve is replica-bound below it
	// and core-bound above it.
	clusterCoreHosts = 5.5
	// clusterNetLat is the one-way propagation delay per message.
	clusterNetLat = 5 * sim.Microsecond
)

// clusterShards is the per-fleet shard request, settable from the CLI.
// It changes wall-clock only: every point's report is byte-identical at
// any value (the ShardGroup contract), which is why the rendered table
// deliberately never mentions it — CI diffs renders across shard
// counts.
var clusterShards = 1

// SetClusterShards requests conservative-parallel execution for the
// cluster experiment's fleets and returns the previous setting. Not
// safe to call concurrently with Cluster.
func SetClusterShards(n int) int {
	prev := clusterShards
	clusterShards = n
	return prev
}

// ClusterPoint is one host count's measurement for one benchmark.
type ClusterPoint struct {
	Hosts     int
	Completed int
	// Throughput is completions over makespan (the run is one saturated
	// busy period); Speedup normalizes it to the 1-host point.
	Throughput float64
	Speedup    float64
	P99        sim.Duration
}

// ClusterCurve is one benchmark's host-count sweep.
type ClusterCurve struct {
	Bench string
	// CapOne is one host's analytic capacity bound (req/s), the y-axis
	// unit the curve is read against.
	CapOne float64
	Points []ClusterPoint
}

// ClusterResult is the fleet scaling experiment.
type ClusterResult struct {
	Curves []ClusterCurve
}

// clusterJob is one (benchmark, hosts) sweep cell.
type clusterJob struct {
	bench *workload.Benchmark
	hosts int
	cap1  float64
}

// clusterRun builds a fresh fleet and drives one saturated load.
func clusterRun(j clusterJob) (ClusterPoint, error) {
	base := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
	pipe := j.bench.Pipeline
	maxBytes := pipe.InputBytes
	if pipe.OutputBytes > maxBytes {
		maxBytes = pipe.OutputBytes
	}
	f, err := cluster.New(cluster.FleetConfig{
		Hosts: j.hosts,
		Base:  base,
		Net: cluster.NetConfig{
			CoreBytesPerSec: clusterCoreHosts * j.cap1 * float64(maxBytes),
			Latency:         clusterNetLat,
		},
		Shards: clusterShards,
	}, []*dmxsys.Pipeline{pipe})
	if err != nil {
		return ClusterPoint{}, err
	}
	rep, err := f.Run(traffic.Spec{
		Arrival:  traffic.OpenLoop,
		Rate:     clusterOverdrive * j.cap1,
		Requests: clusterRequests,
	})
	if err != nil {
		return ClusterPoint{}, err
	}
	al := rep.PerApp[0]
	p := ClusterPoint{Hosts: j.hosts, Completed: al.Completed, P99: al.P99}
	if s := rep.Makespan.Seconds(); s > 0 {
		p.Throughput = float64(al.Completed) / s
	}
	return p, nil
}

// Cluster runs the fleet scaling experiment. The (benchmark × hosts)
// cells are independent fleets and run on the sweep worker pool.
func Cluster() (*ClusterResult, error) {
	benches, err := batchBenches()
	if err != nil {
		return nil, err
	}
	var jobs []clusterJob
	for _, b := range benches {
		plan, err := dmxsys.NewPlan(dmxsys.DefaultConfig(dmxsys.BumpInTheWire),
			[]*dmxsys.Pipeline{b.Pipeline})
		if err != nil {
			return nil, err
		}
		cap1 := plan.Capacity(0).PerSecond
		for _, h := range clusterHosts {
			jobs = append(jobs, clusterJob{bench: b, hosts: h, cap1: cap1})
		}
	}
	points, err := sweep.Map(jobs, func(_ int, j clusterJob) (ClusterPoint, error) {
		return clusterRun(j)
	})
	if err != nil {
		return nil, err
	}
	res := &ClusterResult{Curves: make([]ClusterCurve, len(benches))}
	for i, b := range benches {
		pts := points[i*len(clusterHosts) : (i+1)*len(clusterHosts)]
		base := pts[0].Throughput
		for k := range pts {
			if base > 0 {
				pts[k].Speedup = pts[k].Throughput / base
			}
		}
		res.Curves[i] = ClusterCurve{Bench: b.Name, CapOne: jobs[i*len(clusterHosts)].cap1, Points: pts}
	}
	return res, nil
}

// Render emits one scaling table per benchmark: near-linear speedup
// while replicas bind, bending where the core link saturates.
func (r *ClusterResult) Render() string {
	t := newTable("Serving: fleet scaling — throughput vs host count (Bump-in-the-Wire, test scale)",
		"", "hosts", "completed", "throughput", "speedup", "p99")
	for _, c := range r.Curves {
		t.rowf("%s (1-host capacity bound %.4g req/s)", c.Bench, c.CapOne)
		for _, p := range c.Points {
			t.row("",
				fmt.Sprintf("%d", p.Hosts),
				fmt.Sprintf("%d", p.Completed),
				fmt.Sprintf("%.4g/s", p.Throughput),
				fmt.Sprintf("%.2fx", p.Speedup),
				p.P99.String())
		}
		last := c.Points[len(c.Points)-1]
		t.rowf("  %d hosts: %.2fx over 1 host (core link provisioned for ~%.1f hosts)",
			last.Hosts, last.Speedup, clusterCoreHosts)
	}
	return t.String()
}
