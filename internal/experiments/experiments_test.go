package experiments

import (
	"strings"
	"testing"

	"dmx/internal/dmxsys"
	"dmx/internal/pcie"
)

// These tests assert the *shape* of every reproduced table and figure —
// who wins, how trends move with concurrency and configuration — rather
// than absolute numbers, per the reproduction contract in DESIGN.md.
// They run the same paper-scale simulations as cmd/dmxbench (DRX timing
// results are memoized process-wide, so the suite stays fast after the
// first experiment).

func TestTable1Inventory(t *testing.T) {
	res, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("Table I has %d rows, want 5", len(res.Rows))
	}
	for _, row := range res.Rows {
		// The paper's restructured batches are 6–16 MB.
		if row.BatchMB < 5 || row.BatchMB > 17 {
			t.Errorf("%s: batch %.1f MB outside Table I envelope", row.Benchmark, row.BatchMB)
		}
		if row.Kernel1 == "" || row.Kernel2 == "" || row.Restructuring == "" {
			t.Errorf("%s: incomplete row %+v", row.Benchmark, row)
		}
	}
	if !strings.Contains(res.Render(), "database-hash-join") {
		t.Error("render missing benchmarks")
	}
}

func TestFig3MotivationShape(t *testing.T) {
	res, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	// Per-kernel speedup near the paper's 6.5x geomean.
	if res.PerKernelSpeedup < 5.5 || res.PerKernelSpeedup > 7.5 {
		t.Errorf("per-kernel speedup %.2f, want ~6.5", res.PerKernelSpeedup)
	}
	// End-to-end gain is far below the per-kernel gain at every
	// concurrency — the paper's core motivation (I1).
	for n, s := range res.EndToEnd {
		if s <= 1 {
			t.Errorf("%d apps: Multi-Axl not faster than All-CPU (%.2fx)", n, s)
		}
		if s >= res.PerKernelSpeedup {
			t.Errorf("%d apps: end-to-end %.2fx not below per-kernel %.2fx", n, s, res.PerKernelSpeedup)
		}
	}
	// Multi-Axl's restructure share dominates and grows with load.
	var axl1, axl15 float64
	for _, row := range res.Rows {
		if row.Config == dmxsys.MultiAxl.String() {
			if row.Apps == 1 {
				axl1 = row.RestructShare
			}
			if row.Apps == 15 {
				axl15 = row.RestructShare
			}
		}
	}
	if axl1 < 0.35 || axl1 > 0.85 {
		t.Errorf("Multi-Axl 1-app restructure share %.2f outside the paper's regime", axl1)
	}
	if axl15 <= axl1 {
		t.Errorf("restructure share did not grow with concurrency: %.2f → %.2f", axl1, axl15)
	}
}

func TestFig5CharacterizationShape(t *testing.T) {
	res, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profiles) != 5 {
		t.Fatalf("%d profiles, want 5", len(res.Profiles))
	}
	for _, p := range res.Profiles {
		be := p.BackendCorePct + p.BackendMemPct
		if be < 53-0.1 || be > 77.6+0.1 {
			t.Errorf("%s: backend %.1f%% outside 53–77.6%%", p.Kernel, be)
		}
		if p.L1DMPKI < 50 || p.L1DMPKI > 215 {
			t.Errorf("%s: L1D MPKI %.1f outside 50–215", p.Kernel, p.L1DMPKI)
		}
		if p.L1IMPKI > 7.8 {
			t.Errorf("%s: L1I MPKI %.1f not small", p.Kernel, p.L1IMPKI)
		}
	}
}

func TestFig11HeadlineShape(t *testing.T) {
	res, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	// DMX wins on average everywhere and the gain grows with load
	// (paper: 3.4–8.2x across 1–15 apps).
	prev := 0.0
	for _, n := range Concurrencies {
		avg := res.Average[n]
		if avg <= 1 {
			t.Errorf("%d apps: average speedup %.2fx not > 1", n, avg)
		}
		if avg < prev {
			t.Errorf("%d apps: average %.2fx dropped below %.2fx", n, avg, prev)
		}
		prev = avg
	}
	if res.Average[15] < 4 {
		t.Errorf("15-app average %.2fx far below the paper's 8.2x regime", res.Average[15])
	}
	// Every benchmark individually benefits at scale.
	for name, s := range res.Speedup[15] {
		if s <= 1.5 {
			t.Errorf("%s: 15-app speedup %.2fx too small", name, s)
		}
	}
}

func TestFig12BreakdownShape(t *testing.T) {
	res, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range Concurrencies {
		axl, ok1 := res.Share(dmxsys.MultiAxl.String(), n)
		dmx, ok2 := res.Share(dmxsys.BumpInTheWire.String(), n)
		if !ok1 || !ok2 {
			t.Fatalf("missing shares for %d apps", n)
		}
		// Paper: 55.7–80.8%% baseline restructure share collapses to
		// ≤21%% under DMX.
		if axl < 0.4 {
			t.Errorf("%d apps: baseline restructure share %.2f too small", n, axl)
		}
		if dmx >= axl/2 {
			t.Errorf("%d apps: DMX restructure share %.2f not well below baseline %.2f", n, dmx, axl)
		}
		if dmx > 0.30 {
			t.Errorf("%d apps: DMX restructure share %.2f above the paper's regime", n, dmx)
		}
	}
}

func TestFig13ThroughputShape(t *testing.T) {
	res, err := Fig13()
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, n := range Concurrencies {
		avg := res.Average[n]
		if avg <= 1 {
			t.Errorf("%d apps: throughput improvement %.2fx not > 1", n, avg)
		}
		if avg < prev {
			t.Errorf("%d apps: improvement %.2fx dropped below %.2fx", n, avg, prev)
		}
		prev = avg
	}
	// Personal Info Redaction is the weakest (regex accelerator bound).
	imp := res.Improvement[15]
	for name, v := range imp {
		if name != "personal-info-redaction" && v < imp["personal-info-redaction"] {
			t.Errorf("%s (%.2fx) below personal-info-redaction (%.2fx); paper says PIR is the laggard",
				name, v, imp["personal-info-redaction"])
		}
	}
}

func TestFig14PlacementOrdering(t *testing.T) {
	res, err := Fig14()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{5, 10, 15} {
		integ := res.Speedup[dmxsys.Integrated][n]
		stand := res.Speedup[dmxsys.Standalone][n]
		bump := res.Speedup[dmxsys.BumpInTheWire][n]
		pcieI := res.Speedup[dmxsys.PCIeIntegrated][n]
		if !(integ <= stand && stand <= bump && bump <= pcieI) {
			t.Errorf("%d apps: ordering violated: integ %.2f stand %.2f bump %.2f pcie %.2f",
				n, integ, stand, bump, pcieI)
		}
	}
}

func TestFig15EnergyShape(t *testing.T) {
	res, err := Fig15()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range Concurrencies {
		for p, m := range res.Reduction {
			if m[n] <= 1 {
				t.Errorf("%v at %d apps: energy reduction %.2fx not > 1", p, n, m[n])
			}
		}
	}
	// Standalone overtakes bump-in-the-wire at scale (amortized DRX
	// glue, Fig. 15's 10/15-app result).
	if res.Reduction[dmxsys.Standalone][15] < res.Reduction[dmxsys.BumpInTheWire][15] {
		t.Errorf("standalone (%.2fx) below bump-in-the-wire (%.2fx) at 15 apps",
			res.Reduction[dmxsys.Standalone][15], res.Reduction[dmxsys.BumpInTheWire][15])
	}
	// Integrated is the weakest at scale.
	if res.Reduction[dmxsys.Integrated][15] >= res.Reduction[dmxsys.Standalone][15] {
		t.Error("integrated DRX should trail standalone in energy at 15 apps")
	}
}

func TestFig16ThreeKernelShape(t *testing.T) {
	res, err := Fig16()
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, n := range Concurrencies {
		s := res.Speedup[n]
		if s <= 1 {
			t.Errorf("%d apps: 3-kernel speedup %.2fx not > 1", n, s)
		}
		if s < prev {
			t.Errorf("%d apps: speedup %.2fx dropped below %.2fx", n, s, prev)
		}
		prev = s
		// DMX makes kernels the dominant component again.
		base := res.KernelShare[dmxsys.MultiAxl.String()][n]
		dmx := res.KernelShare[dmxsys.BumpInTheWire.String()][n]
		if dmx <= base {
			t.Errorf("%d apps: DMX kernel share %.2f not above baseline %.2f", n, dmx, base)
		}
	}
}

func TestFig17CollectivesShape(t *testing.T) {
	res, err := Fig17()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range CollectiveSizes {
		if res.Broadcast[n] <= 1 {
			t.Errorf("broadcast n=%d: %.2fx not > 1", n, res.Broadcast[n])
		}
		if res.AllReduce[n] <= 1 {
			t.Errorf("all-reduce n=%d: %.2fx not > 1", n, res.AllReduce[n])
		}
		// All-reduce benefits more (it adds DRX-accelerated summation).
		if res.AllReduce[n] < res.Broadcast[n] {
			t.Errorf("n=%d: all-reduce %.2fx below broadcast %.2fx", n, res.AllReduce[n], res.Broadcast[n])
		}
	}
	// The largest configuration shows the strongest gain (hierarchical
	// forwarding vs the baseline's sequential scatter).
	if res.Broadcast[32] < res.Broadcast[16] {
		t.Error("broadcast speedup did not recover at 32 accelerators")
	}
}

func TestFig18LaneSweepShape(t *testing.T) {
	res, err := Fig18()
	if err != nil {
		t.Fatal(err)
	}
	// Monotone non-decreasing, saturating at 128 (paper's default).
	if res.Speedup[64] < res.Speedup[32] || res.Speedup[128] < res.Speedup[64] {
		t.Errorf("speedup not monotone across lanes: %v", res.Speedup)
	}
	gainTo128 := res.Speedup[128] - res.Speedup[32]
	gainTo256 := res.Speedup[256] - res.Speedup[128]
	if gainTo256 > gainTo128 {
		t.Errorf("no saturation at 128 lanes: +%.2f then +%.2f", gainTo128, gainTo256)
	}
}

func TestFig19GenerationShape(t *testing.T) {
	res, err := Fig19()
	if err != nil {
		t.Fatal(err)
	}
	// DMX keeps a clear advantage on every generation (the paper's
	// conclusion: the bottleneck is restructuring compute, not just the
	// interconnect).
	for _, g := range GenSweep {
		for _, n := range Concurrencies {
			if res.Speedup[g][n] <= 1 {
				t.Errorf("%v, %d apps: %.2fx not > 1", g, n, res.Speedup[g][n])
			}
		}
	}
	// At low concurrency newer generations slightly erode the advantage
	// (faster links help the transfer-heavy baseline more).
	if res.Speedup[pcie.Gen4][1] > res.Speedup[pcie.Gen3][1]+0.01 {
		t.Errorf("Gen4 1-app speedup %.2fx above Gen3 %.2fx; paper expects slight decrease",
			res.Speedup[pcie.Gen4][1], res.Speedup[pcie.Gen3][1])
	}
}

func TestRendersNonEmpty(t *testing.T) {
	res, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Render()) < 100 {
		t.Error("Fig5 render suspiciously short")
	}
}

func TestExperimentDeterminism(t *testing.T) {
	// Two independent regenerations of a figure must agree bit-for-bit —
	// the reproduction contract of DESIGN.md §6.
	a, err := Fig14()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig14()
	if err != nil {
		t.Fatal(err)
	}
	for p, m := range a.Speedup {
		for n, v := range m {
			if b.Speedup[p][n] != v {
				t.Errorf("%v at %d apps: %v vs %v across runs", p, n, v, b.Speedup[p][n])
			}
		}
	}
}

func TestAllRendersContainHeadlines(t *testing.T) {
	// Renders are the user-facing artifact of cmd/dmxbench; every one
	// must carry its figure's headline rows. (Generators here are warm
	// from earlier tests via the process-wide DRX cache.)
	type rcase struct {
		name, needle string
		run          func() (interface{ Render() string }, error)
	}
	cases := []rcase{
		{"fig11", "average (geomean)", func() (interface{ Render() string }, error) { return Fig11() }},
		{"fig13", "average (geomean)", func() (interface{ Render() string }, error) { return Fig13() }},
		{"fig14", "PCIe-Integrated", func() (interface{ Render() string }, error) { return Fig14() }},
		{"fig15", "not evaluated for energy", func() (interface{ Render() string }, error) { return Fig15() }},
		{"fig16", "kernel share", func() (interface{ Render() string }, error) { return Fig16() }},
		{"fig17", "all-reduce", func() (interface{ Render() string }, error) { return Fig17() }},
		{"fig18", "RE lanes", func() (interface{ Render() string }, error) { return Fig18() }},
		{"fig19", "Gen5", func() (interface{ Render() string }, error) { return Fig19() }},
		{"fig3", "end-to-end Multi-Axl speedup", func() (interface{ Render() string }, error) { return Fig3() }},
	}
	for _, c := range cases {
		res, err := c.run()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if out := res.Render(); !strings.Contains(out, c.needle) {
			t.Errorf("%s render missing %q:\n%s", c.name, c.needle, out)
		}
	}
}
