// Package experiments regenerates every table and figure of the paper's
// evaluation (Secs. II, IV, VII). Each Fig*/Table* function runs the
// necessary system simulations and returns a typed result with a Render
// method that prints the same rows/series the paper reports; the
// cmd/dmxbench binary and the repository's bench harness are thin
// wrappers over these functions. Expected-shape assertions live in this
// package's tests, and EXPERIMENTS.md records paper-vs-measured numbers.
//
// Every figure is a sweep of isolated, deterministic simulations, so the
// generators enumerate their (concurrency × benchmark × configuration)
// cells up front and execute them on the sweep worker pool. Results are
// slotted by cell index and folded in the original nesting order, which
// keeps the rendered output bit-for-bit identical to a sequential run at
// any worker count.
package experiments
