package experiments

import (
	"fmt"
	"sort"

	"dmx/internal/dmxsys"
	"dmx/internal/sweep"
)

// Fig11Result is the headline latency comparison: DMX (bump-in-the-wire)
// speedup over the Multi-Axl baseline, per benchmark and on average,
// across the concurrency sweep.
type Fig11Result struct {
	// Speedup[n][bench] = baseline latency / DMX latency.
	Speedup map[int]map[string]float64
	// Average[n] is the geomean across benchmarks.
	Average map[int]float64
}

// Fig11 runs the headline experiment. Per the paper's per-benchmark
// bars, each benchmark is measured homogeneously: n concurrent instances
// of that application (a 15-app run uses 30 accelerators). The
// (concurrency × benchmark) cells are independent simulations and run on
// the sweep worker pool.
func Fig11() (*Fig11Result, error) {
	res := &Fig11Result{
		Speedup: make(map[int]map[string]float64),
		Average: make(map[int]float64),
	}
	benches, err := suite(5)
	if err != nil {
		return nil, err
	}
	jobs := nbJobs(benches)
	speedups, err := sweep.Map(jobs, func(_ int, j nbJob) (float64, error) {
		copies := homogeneous(j.bench, j.n)
		base, err := runSystem(dmxsys.MultiAxl, copies)
		if err != nil {
			return 0, err
		}
		dmx, err := runSystem(dmxsys.BumpInTheWire, copies)
		if err != nil {
			return 0, err
		}
		return base.MeanTotal().Seconds() / dmx.MeanTotal().Seconds(), nil
	})
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		if res.Speedup[j.n] == nil {
			res.Speedup[j.n] = make(map[string]float64, len(benches))
		}
		res.Speedup[j.n][j.bench.Name] = speedups[i]
	}
	for i, n := 0, 0; i < len(jobs); i += len(benches) {
		n = jobs[i].n
		res.Average[n] = geomean(speedups[i : i+len(benches)])
	}
	return res, nil
}

// benchOrder returns the benchmark names of a speedup map in Table I
// order (falling back to sorted).
func benchOrder(m map[string]float64) []string {
	order := []string{"video-surveillance", "sound-detection", "brain-stimulation",
		"personal-info-redaction", "database-hash-join"}
	var out []string
	for _, name := range order {
		if _, ok := m[name]; ok {
			out = append(out, name)
		}
	}
	var extra []string
	for name := range m {
		found := false
		for _, o := range out {
			if o == name {
				found = true
			}
		}
		if !found {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// Render implements the experiment result interface.
func (r *Fig11Result) Render() string {
	t := newTable("Fig. 11: DMX speedup over Multi-Axl (latency)",
		"benchmark", "1 app", "5 apps", "10 apps", "15 apps")
	names := benchOrder(r.Speedup[1])
	for _, name := range names {
		cells := []string{name}
		for _, n := range Concurrencies {
			if v, ok := r.Speedup[n][name]; ok {
				cells = append(cells, f2(v)+"x")
			} else {
				cells = append(cells, "-")
			}
		}
		t.row(cells...)
	}
	cells := []string{"average (geomean)"}
	for _, n := range Concurrencies {
		cells = append(cells, f2(r.Average[n])+"x")
	}
	t.row(cells...)
	return t.String()
}

// Fig12Result is the runtime-breakdown comparison between Multi-Axl and
// DMX across concurrency.
type Fig12Result struct {
	Rows []Fig3Row // same shape as the motivation breakdown
}

// Fig12 measures component shares for baseline and DMX, averaged across
// homogeneous per-benchmark runs (the paper's bars are means over the
// five applications).
func Fig12() (*Fig12Result, error) {
	rows, _, err := breakdownSweep(dmxsys.MultiAxl, dmxsys.BumpInTheWire)
	if err != nil {
		return nil, err
	}
	return &Fig12Result{Rows: rows}, nil
}

// Share returns the restructure share for a config at a concurrency.
func (r *Fig12Result) Share(config string, apps int) (float64, bool) {
	for _, row := range r.Rows {
		if row.Config == config && row.Apps == apps {
			return row.RestructShare, true
		}
	}
	return 0, false
}

// Render implements the experiment result interface.
func (r *Fig12Result) Render() string {
	t := newTable("Fig. 12: runtime breakdown, Multi-Axl (a) vs DMX (b)",
		"config", "apps", "kernel", "restructure", "movement", "mean latency")
	for _, row := range r.Rows {
		t.row(row.Config, fmt.Sprint(row.Apps), pct(row.KernelShare),
			pct(row.RestructShare), pct(row.MovementShare),
			fmt.Sprintf("%.2f ms", row.MeanLatencySecs*1e3))
	}
	return t.String()
}

// Fig13Result is the throughput-improvement experiment.
type Fig13Result struct {
	// Improvement[n][bench] = DMX throughput / baseline throughput.
	Improvement map[int]map[string]float64
	Average     map[int]float64
}

// Fig13 compares steady-state pipeline throughput across the
// (concurrency × benchmark) cells on the sweep worker pool.
func Fig13() (*Fig13Result, error) {
	res := &Fig13Result{
		Improvement: make(map[int]map[string]float64),
		Average:     make(map[int]float64),
	}
	benches, err := suite(5)
	if err != nil {
		return nil, err
	}
	jobs := nbJobs(benches)
	vals, err := sweep.Map(jobs, func(_ int, j nbJob) (float64, error) {
		copies := homogeneous(j.bench, j.n)
		base, err := runSystem(dmxsys.MultiAxl, copies)
		if err != nil {
			return 0, err
		}
		dmx, err := runSystem(dmxsys.BumpInTheWire, copies)
		if err != nil {
			return 0, err
		}
		// Throughput per app = 1 / slowest logical pipeline stage (the
		// paper's Sec. VII-A analysis), geomeaned over instances. The
		// serving experiment (Load) uses the measured occupancy bound
		// instead; this figure keeps the paper's stage metric.
		thr := func(rep dmxsys.RunReport) float64 {
			var xs []float64
			for _, a := range rep.Apps {
				xs = append(xs, 1/a.StageMax(len(j.bench.Pipeline.Stages)).Seconds())
			}
			return geomean(xs)
		}
		return thr(dmx) / thr(base), nil
	})
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		if res.Improvement[j.n] == nil {
			res.Improvement[j.n] = make(map[string]float64, len(benches))
		}
		res.Improvement[j.n][j.bench.Name] = vals[i]
	}
	for i := 0; i < len(jobs); i += len(benches) {
		res.Average[jobs[i].n] = geomean(vals[i : i+len(benches)])
	}
	return res, nil
}

// Render implements the experiment result interface.
func (r *Fig13Result) Render() string {
	t := newTable("Fig. 13: DMX throughput improvement over Multi-Axl",
		"benchmark", "1 app", "5 apps", "10 apps", "15 apps")
	for _, name := range benchOrder(r.Improvement[1]) {
		cells := []string{name}
		for _, n := range Concurrencies {
			if v, ok := r.Improvement[n][name]; ok {
				cells = append(cells, f2(v)+"x")
			} else {
				cells = append(cells, "-")
			}
		}
		t.row(cells...)
	}
	cells := []string{"average (geomean)"}
	for _, n := range Concurrencies {
		cells = append(cells, f2(r.Average[n])+"x")
	}
	t.row(cells...)
	return t.String()
}
