package experiments

import (
	"fmt"
	"sync"

	"dmx/internal/dmxsys"
	"dmx/internal/sim"
	"dmx/internal/sweep"
	"dmx/internal/traffic"
	"dmx/internal/workload"
)

// The batching experiment reproduces the continuous-batching tradeoff
// curve: sweeping the accumulation window on the bump-in-the-wire
// placement shows saturated throughput improving with window size (one
// kernel launch, one driver round trip, and one DMA descriptor per
// batch instead of per request) while low-load tail latency degrades
// (an arrival that opens a window waits the full window before
// dispatch). Both effects are measured per benchmark:
//
//   - the throughput column drives an open-loop arrival train far above
//     capacity, so every window's batches fill and the completion rate
//     is gated by amortized service time (completions over makespan —
//     the whole run is one saturated busy period);
//   - the p99 column offers a light Poisson trickle whose inter-arrival
//     gaps exceed the window, so batches stay near size one and the
//     window is pure added latency.
//
// The miniature (test-scale) corpus makes per-dispatch fixed costs a
// visible fraction of service time, which is the regime where batching
// matters; at multi-megabyte paper scale the same sweep flattens, since
// byte-proportional work dwarfs the amortized overheads.

// batchWindows is the accumulation-window axis (0 = batching off, the
// unbatched serving path bit-for-bit). The ladder deliberately stays in
// the many-batches-in-flight regime: pushing the window until the whole
// train fits one batch would serialize the pipeline's stations (a giant
// batch occupies one station at a time, losing the stage overlap
// consecutive batches retain) and the curve would bend back down.
var batchWindows = []sim.Duration{
	0,
	10 * sim.Microsecond,
	20 * sim.Microsecond,
	40 * sim.Microsecond,
}

const (
	// batchRequests is the per-point request count.
	batchRequests = 128
	// batchSatRate is the saturating open-loop rate: 2.5 µs inter-arrival,
	// several times every test-scale benchmark's unbatched capacity, so
	// even the 10 µs window coalesces and each doubling of the window
	// roughly doubles the batch.
	batchSatRate = 400000.0
	// batchLowRate is the light Poisson rate for the latency column:
	// 2.5 ms mean inter-arrival, orders of magnitude above the widest
	// window, so batches stay near size one.
	batchLowRate = 400.0
	// batchSeed fixes the Poisson timeline.
	batchSeed = 7
)

// BatchPoint is one window's measurement for one benchmark.
type BatchPoint struct {
	Window sim.Duration
	// Batches and MeanSize describe the coalescing the saturated run
	// achieved.
	Batches  int
	MeanSize float64
	// Throughput is the saturated completion rate in requests per
	// second: completions over the busy period (makespan net of the
	// constant window-open offset, which in a continuous arrival train
	// shifts every completion once and does not recur per batch).
	// SatP99 is that run's p99.
	Throughput float64
	SatP99     sim.Duration
	// LowP99 is the light-load p99 — the column that degrades as the
	// window grows.
	LowP99 sim.Duration
}

// BatchCurve is one benchmark's window sweep.
type BatchCurve struct {
	Bench  string
	Points []BatchPoint
}

// BatchResult is the batching experiment: one tradeoff curve per
// benchmark.
type BatchResult struct {
	Curves []BatchCurve
}

// batchSuite caches the test-scale benchmark suite (distinct from the
// paper-scale cache the other experiments share).
var batchSuite struct {
	once    sync.Once
	benches []*workload.Benchmark
	err     error
}

// batchBenches returns the five Table I benchmarks at test scale.
func batchBenches() ([]*workload.Benchmark, error) {
	batchSuite.once.Do(func() {
		batchSuite.benches, batchSuite.err = workload.Suite(workload.TestScale)
	})
	return batchSuite.benches, batchSuite.err
}

// batchJob is one (benchmark, window) sweep cell.
type batchJob struct {
	bench  *workload.Benchmark
	window sim.Duration
}

// batchRun builds a fresh bump-in-the-wire system with the given window
// and runs one load.
func batchRun(bench *workload.Benchmark, window sim.Duration, spec traffic.Spec) (traffic.AppLoad, sim.Duration, error) {
	cfg := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
	cfg.BatchWindow = window
	sys, err := dmxsys.New(cfg, []*dmxsys.Pipeline{bench.Pipeline})
	if err != nil {
		return traffic.AppLoad{}, 0, err
	}
	rep, err := sys.RunLoad(spec)
	if err != nil {
		return traffic.AppLoad{}, 0, err
	}
	return rep.PerApp[0], rep.Makespan, nil
}

// Batching runs the continuous-batching tradeoff experiment. The
// (benchmark × window) cells are independent simulations and run on the
// sweep worker pool.
func Batching() (*BatchResult, error) {
	benches, err := batchBenches()
	if err != nil {
		return nil, err
	}
	var jobs []batchJob
	for _, b := range benches {
		for _, w := range batchWindows {
			jobs = append(jobs, batchJob{bench: b, window: w})
		}
	}
	points, err := sweep.Map(jobs, func(_ int, j batchJob) (BatchPoint, error) {
		sat, makespan, err := batchRun(j.bench, j.window, traffic.Spec{
			Arrival:  traffic.OpenLoop,
			Rate:     batchSatRate,
			Requests: batchRequests,
		})
		if err != nil {
			return BatchPoint{}, err
		}
		low, _, err := batchRun(j.bench, j.window, traffic.Spec{
			Arrival:  traffic.Poisson,
			Rate:     batchLowRate,
			Requests: batchRequests,
			Seed:     batchSeed,
		})
		if err != nil {
			return BatchPoint{}, err
		}
		p := BatchPoint{
			Window:  j.window,
			Batches: sat.Batches,
			SatP99:  sat.P99,
			LowP99:  low.P99,
		}
		if sat.Batches > 0 {
			p.MeanSize = float64(sat.BatchedRequests) / float64(sat.Batches)
		}
		if s := (makespan - j.window).Seconds(); s > 0 {
			p.Throughput = float64(sat.Completed) / s
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	res := &BatchResult{Curves: make([]BatchCurve, len(benches))}
	for i, b := range benches {
		res.Curves[i] = BatchCurve{
			Bench:  b.Name,
			Points: points[i*len(batchWindows) : (i+1)*len(batchWindows)],
		}
	}
	return res, nil
}

// Render emits one table per benchmark: the saturated-throughput column
// rises with the window while the light-load p99 column falls behind.
func (r *BatchResult) Render() string {
	t := newTable("Serving: continuous-batching window tradeoff (Bump-in-the-Wire, test scale)",
		"", "window", "batches", "mean size", "sat thr", "sat p99", "low-load p99")
	for _, c := range r.Curves {
		t.rowf("%s", c.Bench)
		base := c.Points[0]
		for _, p := range c.Points {
			t.row("",
				p.Window.String(),
				fmt.Sprintf("%d", p.Batches),
				fmt.Sprintf("%.2f", p.MeanSize),
				fmt.Sprintf("%.4g/s", p.Throughput),
				p.SatP99.String(),
				p.LowP99.String())
		}
		last := c.Points[len(c.Points)-1]
		t.rowf("  widest window: %.2fx saturated throughput, +%v light-load p99 vs unbatched",
			last.Throughput/base.Throughput, (last.LowP99 - base.LowP99).String())
	}
	return t.String()
}
