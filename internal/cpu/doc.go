// Package cpu models the host processor of the multi-accelerator server.
//
// Two roles. First, it is the cost model for data restructuring executed
// on the host — the Multi-Axl baseline of the paper runs every
// restructuring kernel on Xeon cores, and the gap between this model and
// the DRX (internal/drx) is where DMX's speedup comes from. Second, it
// reproduces the Sec. IV-A characterization: a top-down stall breakdown
// and MPKI profile of restructuring operations (Fig. 5), derived from the
// same kernel statistics the cost model consumes.
//
// The model is analytic, calibrated to the paper's testbed: an Intel Xeon
// Platinum 8260L at 2.4 GHz, 16 cores in use, hyperthreading disabled,
// AVX-256 vector units, and ~6–16 MB streaming batches that thrash the
// 1 MB L2 (Sec. IV-A reports 50–215 L1D MPKI and 100% vector-unit
// occupancy on these kernels).
package cpu
