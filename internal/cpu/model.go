package cpu

import (
	"dmx/internal/restructure"
	"dmx/internal/sim"
)

// Model holds the host CPU's calibration constants.
type Model struct {
	// Cores is the number of physical cores available to restructuring.
	Cores int
	// FreqHz is the core clock.
	FreqHz float64
	// SIMDLanes is the f32 width of the vector unit (AVX-256 → 8).
	SIMDLanes int
	// IssueEff derates peak vector throughput for the backend stalls the
	// top-down profile shows (53–77.6% backend-bound cycles).
	IssueEff float64
	// MemBWBytes is the socket's sustainable streaming bandwidth, shared
	// by every concurrently restructuring job.
	MemBWBytes float64
	// NonStreamPenalty multiplies memory traffic of stages whose inner
	// loop is not unit-stride (transposes, strided gathers): they defeat
	// the hardware prefetcher and waste cache lines.
	NonStreamPenalty float64
	// ThrashFactor derates the effective restructuring bandwidth below
	// the socket's raw streaming rate. It folds together the behaviors
	// Sec. IV-A profiles on these kernels: 6–16 MB batches thrashing the
	// 1 MB L2 (50–215 L1D MPKI), write-allocate traffic on every output
	// line, and the 130–140 ephemeral worker threads the math library
	// spawns per operation.
	ThrashFactor float64
	// StageOverhead charges the software cost of launching one stage's
	// parallel loop (the ephemeral MKL-style thread pool of Sec. IV-A).
	StageOverhead sim.Duration
}

// DefaultModel returns the calibrated Xeon 8260L configuration.
func DefaultModel() *Model {
	return &Model{
		Cores:            16,
		FreqHz:           2.4e9,
		SIMDLanes:        8,
		IssueEff:         0.04,
		MemBWBytes:       60e9,
		NonStreamPenalty: 3.0,
		ThrashFactor:     7.0,
		StageOverhead:    20 * sim.Microsecond,
	}
}

// KernelTime estimates the wall time of one restructuring kernel instance
// given the cores it may use and its share of memory bandwidth in
// bytes/sec. Each stage is the max of its compute-bound and memory-bound
// terms (they overlap on an out-of-order core), plus launch overhead.
func (m *Model) KernelTime(k *restructure.Kernel, cores int, bwShare float64) sim.Duration {
	if cores < 1 {
		cores = 1
	}
	if cores > m.Cores {
		cores = m.Cores
	}
	if bwShare <= 0 || bwShare > m.MemBWBytes {
		bwShare = m.MemBWBytes
	}
	var total sim.Duration
	for _, s := range k.Stages {
		st := s.Stats(k)
		total += m.stageTime(st, cores, bwShare) + m.StageOverhead
	}
	return total
}

func (m *Model) stageTime(st restructure.StageStats, cores int, bwShare float64) sim.Duration {
	opsPerSec := float64(cores) * m.FreqHz * float64(m.SIMDLanes) * m.IssueEff
	compute := float64(st.Ops) / opsPerSec
	traffic := float64(st.BytesIn+st.BytesOut) * m.ThrashFactor
	if !st.VectorFriendly {
		traffic *= m.NonStreamPenalty
	}
	memory := traffic / bwShare
	if memory > compute {
		return sim.FromSeconds(memory)
	}
	return sim.FromSeconds(compute)
}

// BatchTime is KernelTime for the common single-kernel case with an even
// bandwidth split across nJobs concurrent restructuring jobs.
func (m *Model) BatchTime(k *restructure.Kernel, nJobs int) sim.Duration {
	if nJobs < 1 {
		nJobs = 1
	}
	cores := m.Cores / nJobs
	if cores < 1 {
		cores = 1
	}
	return m.KernelTime(k, cores, m.MemBWBytes/float64(nJobs))
}
