package cpu

import (
	"fmt"

	"dmx/internal/restructure"
)

// Profile is a top-down microarchitectural characterization of one
// restructuring kernel on the host CPU, in the style of Intel VTune's
// level-1 breakdown (Fig. 5), plus the cache-miss profile of Sec. IV-A.
// Percentages sum to 100.
type Profile struct {
	Kernel string

	FrontendPct    float64
	BadSpecPct     float64
	BackendCorePct float64
	BackendMemPct  float64
	RetiringPct    float64

	L1IMPKI float64
	L1DMPKI float64
	L2MPKI  float64

	// VectorUtilization is the fraction of retired FP work executing on
	// the full vector width (the paper reports 100% AVX-256 occupancy).
	VectorUtilization float64
	// EphemeralThreads estimates the worker threads the math library
	// spawns for the kernel's parallel loops (130–140 observed).
	EphemeralThreads int
}

// Characterize derives the profile from kernel statistics. The shape of
// the derivation follows the paper's analysis:
//
//   - streaming batches far exceed the 1 MB L2, so data-cache misses
//     scale with unique traffic per instruction (50–215 L1D MPKI);
//   - the instruction working set is tiny (low L1I MPKI);
//   - cycles concentrate in the backend, split between memory stalls
//     (cache misses) and core stalls (busy vector units);
//   - permutation-heavy kernels (more branchy gather/scatter control)
//     show elevated front-end and bad-speculation shares, the behavior
//     Fig. 5 singles out for Video Surveillance.
func (m *Model) Characterize(k *restructure.Kernel) Profile {
	var ops, elems, traffic, permTraffic int64
	for _, s := range k.Stages {
		st := s.Stats(k)
		ops += st.Ops
		elems += st.Elems
		traffic += st.BytesIn + st.BytesOut
		if !st.VectorFriendly {
			permTraffic += st.BytesIn + st.BytesOut
		}
	}
	if elems == 0 {
		elems = 1
	}

	// Dynamic instruction estimate: the vector body retires roughly one
	// micro-op bundle per SIMD group per op, plus address/loop overhead.
	vecInstrs := float64(ops)/float64(m.SIMDLanes) + float64(elems)/float64(m.SIMDLanes)*1.5
	if vecInstrs < 1 {
		vecInstrs = 1
	}

	// Cache behavior: one L1D miss per 64 B line of streamed traffic;
	// permuted traffic misses on (nearly) every access.
	streamTraffic := float64(traffic - permTraffic)
	l1dMisses := streamTraffic/64 + float64(permTraffic)/8
	l1dMPKI := 1000 * l1dMisses / vecInstrs
	// L2 filters roughly half of the remaining stream (next-line
	// prefetch hits), none of the permuted traffic.
	l2MPKI := 1000 * (streamTraffic/128 + float64(permTraffic)/8) / vecInstrs

	permFrac := 0.0
	if traffic > 0 {
		permFrac = float64(permTraffic) / float64(traffic)
	}
	// Memory- vs core-bound split from the cost model's two terms.
	compute := float64(ops) / (m.FreqHz * float64(m.SIMDLanes) * m.IssueEff)
	memory := float64(traffic) * m.ThrashFactor / m.MemBWBytes
	memFrac := memory / (memory + compute)

	p := Profile{
		Kernel:            k.Name,
		FrontendPct:       4 + 10*permFrac,
		BadSpecPct:        2 + 10*permFrac,
		L1IMPKI:           1.8 + 1.2*permFrac,
		L1DMPKI:           clampF(l1dMPKI, 50, 215),
		L2MPKI:            clampF(l2MPKI, 25, 109),
		VectorUtilization: 1.0,
		EphemeralThreads:  130 + int(10*permFrac),
	}
	backend := 53 + 24.6*memFrac // 53%–77.6% observed range
	p.BackendMemPct = backend * (0.40 + 0.30*memFrac)
	p.BackendCorePct = backend - p.BackendMemPct
	p.RetiringPct = 100 - p.FrontendPct - p.BadSpecPct - p.BackendMemPct - p.BackendCorePct
	return p
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// String renders the profile as a VTune-style summary line.
func (p Profile) String() string {
	return fmt.Sprintf(
		"%s: FE %.1f%% BadSpec %.1f%% BE-core %.1f%% BE-mem %.1f%% Ret %.1f%% | L1I %.1f L1D %.1f L2 %.1f MPKI",
		p.Kernel, p.FrontendPct, p.BadSpecPct, p.BackendCorePct, p.BackendMemPct, p.RetiringPct,
		p.L1IMPKI, p.L1DMPKI, p.L2MPKI)
}
