package cpu

import (
	"testing"
	"testing/quick"

	"dmx/internal/restructure"
	"dmx/internal/sim"
	"dmx/internal/tensor"
)

func benchKernels() []*restructure.Kernel {
	return []*restructure.Kernel{
		restructure.VideoPreprocess(1 << 20),
		restructure.MelSpectrogram(256, 512, 40),
		restructure.SignalNormalize(64, 4096),
		restructure.RecordFrame(4096, 2048),
		restructure.ColumnPack(1<<18, 6, 7, 24),
	}
}

func TestKernelTimePositiveAndFinite(t *testing.T) {
	m := DefaultModel()
	for _, k := range benchKernels() {
		d := m.KernelTime(k, m.Cores, m.MemBWBytes)
		if d <= 0 {
			t.Errorf("%s: non-positive time %v", k.Name, d)
		}
		if d > 10*sim.Second {
			t.Errorf("%s: implausible time %v for one batch", k.Name, d)
		}
	}
}

func TestMoreCoresNeverSlower(t *testing.T) {
	m := DefaultModel()
	for _, k := range benchKernels() {
		t1 := m.KernelTime(k, 1, m.MemBWBytes)
		t4 := m.KernelTime(k, 4, m.MemBWBytes)
		t16 := m.KernelTime(k, 16, m.MemBWBytes)
		if t4 > t1 || t16 > t4 {
			t.Errorf("%s: core scaling broken: 1→%v 4→%v 16→%v", k.Name, t1, t4, t16)
		}
	}
}

func TestBandwidthContentionSlowsJobs(t *testing.T) {
	m := DefaultModel()
	k := restructure.RecordFrame(4096, 2048) // memory-bound copy kernel
	alone := m.BatchTime(k, 1)
	crowded := m.BatchTime(k, 8)
	if crowded <= alone {
		t.Errorf("8-way contention (%v) not slower than solo (%v)", crowded, alone)
	}
	// A purely memory-bound kernel should degrade roughly linearly.
	ratio := float64(crowded) / float64(alone)
	if ratio < 3 || ratio > 16 {
		t.Errorf("contention ratio %.1f outside plausible [3,16]", ratio)
	}
}

func TestStageOverheadCharged(t *testing.T) {
	m := DefaultModel()
	k := restructure.RecordFrame(2, 4) // trivially small
	d := m.KernelTime(k, 16, m.MemBWBytes)
	if d < 2*m.StageOverhead {
		t.Errorf("tiny kernel time %v below launch overhead of its 2 stages", d)
	}
}

func TestNonStreamPenaltyApplied(t *testing.T) {
	m := DefaultModel()
	// Pure transpose (permutation traffic) vs pure reshape (streaming
	// copy) of the same payload: the transpose must cost more.
	tr := &restructure.Kernel{
		Name: "tr",
		Params: []restructure.Param{
			{Name: "x", DType: tensor.Uint8, Shape: []int{2048, 2048}, Dir: restructure.In},
			{Name: "y", DType: tensor.Uint8, Shape: []int{2048, 2048}, Dir: restructure.Out},
		},
		Stages: []restructure.Stage{
			&restructure.TransposeStage{Out: "y", In: "x", Perm: []int{1, 0}},
		},
	}
	rs := &restructure.Kernel{
		Name: "rs",
		Params: []restructure.Param{
			{Name: "x", DType: tensor.Uint8, Shape: []int{2048, 2048}, Dir: restructure.In},
			{Name: "y", DType: tensor.Uint8, Shape: []int{2048 * 2048}, Dir: restructure.Out},
		},
		Stages: []restructure.Stage{
			&restructure.ReshapeStage{Out: "y", In: "x"},
		},
	}
	if m.KernelTime(tr, 16, m.MemBWBytes) <= m.KernelTime(rs, 16, m.MemBWBytes) {
		t.Error("transpose not penalized vs streaming copy")
	}
}

func TestCharacterizeMatchesPaperRanges(t *testing.T) {
	m := DefaultModel()
	for _, k := range benchKernels() {
		p := m.Characterize(k)
		sum := p.FrontendPct + p.BadSpecPct + p.BackendCorePct + p.BackendMemPct + p.RetiringPct
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("%s: shares sum to %.2f%%", k.Name, sum)
		}
		// Paper: ≤14% front-end, ≤12.5% bad speculation, backend 53–77.6%.
		if p.FrontendPct > 14+0.1 {
			t.Errorf("%s: frontend %.1f%% above paper ceiling", k.Name, p.FrontendPct)
		}
		if p.BadSpecPct > 12.5+0.1 {
			t.Errorf("%s: bad speculation %.1f%% above paper ceiling", k.Name, p.BadSpecPct)
		}
		be := p.BackendCorePct + p.BackendMemPct
		if be < 53-0.1 || be > 77.6+0.1 {
			t.Errorf("%s: backend %.1f%% outside 53–77.6%%", k.Name, be)
		}
		// Paper: 50–215 L1D MPKI, 25–109 L2 MPKI, ~2.3 average L1I MPKI.
		if p.L1DMPKI < 50 || p.L1DMPKI > 215 {
			t.Errorf("%s: L1D MPKI %.1f outside 50–215", k.Name, p.L1DMPKI)
		}
		if p.L2MPKI < 25 || p.L2MPKI > 109 {
			t.Errorf("%s: L2 MPKI %.1f outside 25–109", k.Name, p.L2MPKI)
		}
		if p.L1IMPKI > 7.8 {
			t.Errorf("%s: L1I MPKI %.1f not small", k.Name, p.L1IMPKI)
		}
		if p.VectorUtilization != 1.0 {
			t.Errorf("%s: vector utilization %.2f, want 1.0", k.Name, p.VectorUtilization)
		}
		if p.EphemeralThreads < 130 || p.EphemeralThreads > 140 {
			t.Errorf("%s: %d threads outside 130–140", k.Name, p.EphemeralThreads)
		}
	}
}

func TestVideoHasHighestBranchShares(t *testing.T) {
	// Fig. 5 singles out Video Surveillance for front-end and bad
	// speculation; its pipeline is the most permutation-heavy.
	m := DefaultModel()
	video := m.Characterize(restructure.VideoPreprocess(1 << 20))
	sound := m.Characterize(restructure.MelSpectrogram(256, 512, 40))
	if video.BadSpecPct <= sound.BadSpecPct {
		t.Errorf("video bad-spec %.1f%% not above sound %.1f%%", video.BadSpecPct, sound.BadSpecPct)
	}
	if video.FrontendPct <= sound.FrontendPct {
		t.Errorf("video frontend %.1f%% not above sound %.1f%%", video.FrontendPct, sound.FrontendPct)
	}
}

// Property: KernelTime is monotone in bandwidth share — more bandwidth
// never increases the estimate.
func TestKernelTimeMonotoneInBandwidth(t *testing.T) {
	m := DefaultModel()
	k := restructure.MelSpectrogram(64, 256, 32)
	prop := func(a, b uint8) bool {
		bw1 := 1e9 * float64(a%32+1)
		bw2 := 1e9 * float64(b%32+1)
		if bw1 > bw2 {
			bw1, bw2 = bw2, bw1
		}
		return m.KernelTime(k, 8, bw2) <= m.KernelTime(k, 8, bw1)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestProfileString(t *testing.T) {
	m := DefaultModel()
	s := m.Characterize(restructure.RecordFrame(64, 64)).String()
	if s == "" || len(s) < 20 {
		t.Errorf("profile string too short: %q", s)
	}
}
