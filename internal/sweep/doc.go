// Package sweep is the parallel job layer of the evaluation harness.
//
// The paper's evaluation is a large configuration sweep: every figure is
// (application × concurrency × placement × hardware knob), and each cell
// is an isolated, deterministic dmxsys simulation with its own event
// engine. sweep exploits exactly that shape — jobs are enumerated up
// front, executed by a worker pool sized to GOMAXPROCS, and results are
// slotted by job index, so the folded (and rendered) output of a
// parallel run is bit-for-bit identical to a sequential one.
// Parallelism exists only *across* simulations, never inside one engine.
package sweep
