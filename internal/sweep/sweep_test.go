package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapSlotsResultsByIndex(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	out, err := Map(items, func(i, v int) (int, error) { return v * v, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapReturnsLowestIndexedError(t *testing.T) {
	e7 := errors.New("job 7")
	e3 := errors.New("job 3")
	_, err := Map(make([]struct{}, 16), func(i int, _ struct{}) (int, error) {
		switch i {
		case 7:
			return 0, e7
		case 3:
			return 0, e3
		}
		return i, nil
	})
	if err != e3 {
		t.Fatalf("err = %v, want lowest-indexed %v", err, e3)
	}
}

func TestMapRunsEveryJobDespiteErrors(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(make([]struct{}, 32), func(i int, _ struct{}) (int, error) {
		ran.Add(1)
		if i%2 == 0 {
			return 0, fmt.Errorf("job %d", i)
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if got := ran.Load(); got != 32 {
		t.Fatalf("ran %d jobs, want all 32", got)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(nil, func(i int, v int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: out=%v err=%v", out, err)
	}
}

func TestEach(t *testing.T) {
	var sum atomic.Int64
	if err := Each(64, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 64*63/2 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	if prev := SetWorkers(1); prev != 0 {
		t.Fatalf("initial override = %d, want 0", prev)
	}
	if Workers() != 1 {
		t.Fatalf("Workers() = %d after SetWorkers(1)", Workers())
	}
	if prev := SetWorkers(0); prev != 1 {
		t.Fatalf("restore returned %d, want 1", prev)
	}
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS", Workers())
	}
}

func TestSequentialModeRunsInline(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(1)
	// With one worker the jobs must run in index order on this goroutine.
	var order []int
	_, err := Map(make([]struct{}, 10), func(i int, _ struct{}) (int, error) {
		order = append(order, i) // safe: inline sequential execution
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order broken at %d: %v", i, order)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	defer SetWorkers(0)
	items := make([]int, 200)
	for i := range items {
		items[i] = i * 3
	}
	fn := func(i, v int) (string, error) { return fmt.Sprintf("%d:%d", i, v), nil }
	SetWorkers(1)
	seq, err := Map(items, fn)
	if err != nil {
		t.Fatal(err)
	}
	SetWorkers(8)
	par, err := Map(items, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("slot %d: sequential %q vs parallel %q", i, seq[i], par[i])
		}
	}
}
