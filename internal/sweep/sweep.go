package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerOverride, when positive, pins the pool size; zero means "size by
// GOMAXPROCS". It exists so tests can force a sequential run (workers=1)
// and the dmxbench -j flag can pin an explicit width.
var workerOverride atomic.Int64

// Workers reports the pool size the next Map/Each call will use.
func Workers() int {
	if n := workerOverride.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers pins the pool size and returns the previous override (0 if
// the pool was sized by GOMAXPROCS). n <= 0 restores the GOMAXPROCS
// default.
func SetWorkers(n int) int {
	prev := workerOverride.Load()
	if n <= 0 {
		workerOverride.Store(0)
	} else {
		workerOverride.Store(int64(n))
	}
	return int(prev)
}

// Map runs fn over every item on the worker pool and returns the results
// slotted by item index. All jobs run to completion even if some fail;
// if any failed, the error of the lowest-indexed failing job is returned
// (a deterministic choice, independent of scheduling order).
//
// With one worker, Map degenerates to an inline sequential loop — no
// goroutines — so a workers=1 run is sequential in the strictest sense.
func Map[T, R any](items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	errs := make([]error, len(items))
	run := func(i int) {
		out[i], errs[i] = fn(i, items[i])
	}
	dispatch(len(items), run)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Each runs fn for i in [0, n) on the worker pool. Like Map, every job
// runs to completion and the lowest-indexed error is returned.
func Each(n int, fn func(i int) error) error {
	errs := make([]error, n)
	dispatch(n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// dispatch executes run(0..n-1) on min(Workers, n) goroutines pulling
// job indices from a shared counter. Each run(i) writes only to its own
// slot, so no further synchronization is needed beyond the final Wait.
func dispatch(n int, run func(i int)) {
	if n == 0 {
		return
	}
	workers := Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
}
