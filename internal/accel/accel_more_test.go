package accel

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"dmx/internal/tensor"
)

// Property: the FFT is linear — FFT(a·x + b·y) = a·FFT(x) + b·FFT(y).
func TestFFTLinearityProperty(t *testing.T) {
	const win = 32
	fft, err := NewFFT(1, win)
	if err != nil {
		t.Fatal(err)
	}
	run := func(x []float64) []complex128 {
		in := tensor.New(tensor.Float32, 1, win)
		for i, v := range x {
			in.Set(v, 0, i)
		}
		out, err := fft.Run(map[string]*tensor.Tensor{"audio": in})
		if err != nil {
			t.Fatal(err)
		}
		res := make([]complex128, win/2)
		for b := range res {
			res[b] = out["spectrum"].AtComplex(0, b)
		}
		return res
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, win)
		y := make([]float64, win)
		z := make([]float64, win)
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		for i := range x {
			x[i] = rng.Float64()*2 - 1
			y[i] = rng.Float64()*2 - 1
			z[i] = a*x[i] + b*y[i]
		}
		fx, fy, fz := run(x), run(y), run(z)
		for i := range fz {
			want := complex(a, 0)*fx[i] + complex(b, 0)*fy[i]
			if cmplx.Abs(fz[i]-want) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Parseval-style check: FFT energy matches time-domain energy (up to the
// half-spectrum convention).
func TestFFTEnergyConservation(t *testing.T) {
	const win = 64
	fft, err := NewFFT(1, win)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	in := tensor.New(tensor.Float32, 1, win)
	var timeE float64
	for i := 0; i < win; i++ {
		v := rng.NormFloat64()
		in.Set(v, 0, i)
		timeE += v * v
	}
	out, err := fft.Run(map[string]*tensor.Tensor{"audio": in})
	if err != nil {
		t.Fatal(err)
	}
	// Full-spectrum energy = N × time energy; the accelerator keeps the
	// positive half, so reconstruct using conjugate symmetry: bins 1..N/2-1
	// appear twice, bin 0 once; the (dropped) Nyquist bin is recovered as
	// the residual and must be non-negative and small for noise.
	var freqE float64
	for b := 0; b < win/2; b++ {
		m := cmplx.Abs(out["spectrum"].AtComplex(0, b))
		if b == 0 {
			freqE += m * m
		} else {
			freqE += 2 * m * m
		}
	}
	nyquistE := float64(win)*timeE - freqE
	if nyquistE < -1e-6*freqE {
		t.Errorf("negative Nyquist residual: %v", nyquistE)
	}
	if freqE > float64(win)*timeE*(1+1e-9) {
		t.Errorf("spectrum energy %v exceeds N·time energy %v", freqE, float64(win)*timeE)
	}
	if freqE < 0.8*float64(win)*timeE {
		t.Errorf("spectrum energy %v implausibly low vs %v", freqE, float64(win)*timeE)
	}
}

func TestGzipIncompressibleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	plain := make([]byte, 4096)
	rng.Read(plain)
	gz, err := Compress(plain)
	if err != nil {
		t.Fatal(err)
	}
	spec := NewGzipDecompress(len(plain))
	out, err := spec.Run(map[string]*tensor.Tensor{"gz": tensor.FromBytes(gz, len(gz))})
	if err != nil {
		t.Fatal(err)
	}
	if string(out["rows"].Bytes()) != string(plain) {
		t.Error("incompressible round trip failed")
	}
	// Corrupt stream must fail, not produce garbage.
	gz[len(gz)/2] ^= 0xFF
	if _, err := spec.Run(map[string]*tensor.Tensor{"gz": tensor.FromBytes(gz, len(gz))}); err == nil {
		t.Error("corrupted gzip accepted")
	}
}

func TestRegexAcrossRecordBoundariesIsolated(t *testing.T) {
	// PII split across two fixed-width records must NOT match: records
	// are independent scan units (the accelerator's framing contract).
	reclen := 16
	raw := make([]byte, 2*reclen)
	copy(raw, "xxxxxxxxxx123-45")          // record 0 ends mid-SSN
	copy(raw[reclen:], "-6789yyyyyyyyyyy") // record 1 starts with the rest
	spec := NewRegexRedact(2, reclen)
	out, err := spec.Run(map[string]*tensor.Tensor{"records": tensor.FromBytes(raw, 2, reclen)})
	if err != nil {
		t.Fatal(err)
	}
	if out["matches"].At(0) != 0 || out["matches"].At(1) != 0 {
		t.Error("split PII matched across record boundary")
	}
}

func TestVideoDecodeTamperedCount(t *testing.T) {
	// A bitstream whose counts undershoot the pixel total must error.
	dec := NewVideoDecode(100)
	short := EncodeRLE(tensor.New(tensor.Uint8, 50, 3))
	if _, err := dec.Run(map[string]*tensor.Tensor{
		"bitstream": tensor.FromBytes(short, len(short)),
	}); err == nil {
		t.Error("undersized stream accepted")
	}
}

func TestBERTAttentionRespondsToContext(t *testing.T) {
	// Changing one token must be able to change tags elsewhere in the
	// sequence (attention mixes context); verify the mechanism is live.
	nseq, seqlen, dim := 1, 16, 16
	ner := NewBERTNER(nseq, seqlen, dim, 99)
	mk := func(first int) *tensor.Tensor {
		tok := tensor.New(tensor.Int32, nseq, seqlen)
		for i := 0; i < seqlen; i++ {
			tok.Set(float64((i*37)%256), 0, i)
		}
		tok.Set(float64(first), 0, 0)
		return tok
	}
	changed := false
	for first := 0; first < 64 && !changed; first += 3 {
		a, err := ner.Run(map[string]*tensor.Tensor{"tokens": mk(first)})
		if err != nil {
			t.Fatal(err)
		}
		b, err := ner.Run(map[string]*tensor.Tensor{"tokens": mk(first + 1)})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < seqlen; i++ { // positions other than the changed one
			if a["tags"].At(0, i) != b["tags"].At(0, i) {
				changed = true
				break
			}
		}
	}
	if !changed {
		t.Error("no contextual effect observed; attention may be inert")
	}
}

func TestCPULatencyScalesWithSpeedup(t *testing.T) {
	fft, _ := NewFFT(1, 64)
	batch := int64(1 << 20)
	accelT := fft.Latency(batch)
	cpuT := fft.CPULatency(batch)
	if r := float64(cpuT) / float64(accelT); math.Abs(r-fft.Speedup) > 0.01 {
		t.Errorf("CPU/accel latency ratio %.2f, want %v", r, fft.Speedup)
	}
}

func TestVectorSearchFindsPlantedNeedle(t *testing.T) {
	const (
		nq, dim, corpus = 3, 32, 128
		seed            = 909
	)
	search := NewVectorSearch(nq, dim, corpus, seed)
	queries := tensor.New(tensor.Int8, nq, dim)
	// Plant corpus vectors 5, 17, 99 as the queries themselves: a vector's
	// best dot-product match in the corpus is overwhelmingly itself.
	for qi, c := range []int{5, 17, 99} {
		vec := CorpusVector(corpus, dim, seed, c)
		for d := 0; d < dim; d++ {
			queries.Set(float64(vec[d]), qi, d)
		}
	}
	out, err := search.Run(map[string]*tensor.Tensor{"queries": queries})
	if err != nil {
		t.Fatal(err)
	}
	for qi, want := range []float64{5, 17, 99} {
		if got := out["ids"].At(qi); got != want {
			t.Errorf("query %d retrieved %v, want %v", qi, got, want)
		}
		if out["scores"].At(qi) <= 0 {
			t.Errorf("query %d self-score not positive", qi)
		}
	}
}

func TestEmbedderMeanPoolingBounds(t *testing.T) {
	nq, seqlen, dim := 4, 8, 16
	emb := NewEmbedder(nq, seqlen, dim, 1)
	tok := tensor.New(tensor.Int32, nq, seqlen)
	for q := 0; q < nq; q++ {
		for i := 0; i < seqlen; i++ {
			tok.Set(float64((q*seqlen+i)%512), q, i)
		}
	}
	out, err := emb.Run(map[string]*tensor.Tensor{"tokens": tok})
	if err != nil {
		t.Fatal(err)
	}
	e := out["embeddings"]
	if e.Dim(0) != nq || e.Dim(1) != dim {
		t.Fatalf("embedding shape %v", e.Shape())
	}
	// Mean pooling keeps magnitudes in the table's scale.
	it := tensor.NewIter(e.Shape())
	for it.Next() {
		if v := e.At(it.Index()...); v < -5 || v > 5 {
			t.Fatalf("embedding %v out of plausible range", v)
		}
	}
	// Identical sequences embed identically.
	out2, _ := NewEmbedder(nq, seqlen, dim, 1).Run(map[string]*tensor.Tensor{"tokens": tok})
	if !tensor.Equal(e, out2["embeddings"]) {
		t.Error("embedder not deterministic")
	}
}
