package accel

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"dmx/internal/sim"
	"dmx/internal/tensor"
)

func TestFFTMatchesDirectDFT(t *testing.T) {
	frames, win := 3, 64
	fft, err := NewFFT(frames, win)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	audio := tensor.New(tensor.Float32, frames, win)
	for f := 0; f < frames; f++ {
		for i := 0; i < win; i++ {
			audio.Set(rng.Float64()*2-1, f, i)
		}
	}
	out, err := fft.Run(map[string]*tensor.Tensor{"audio": audio})
	if err != nil {
		t.Fatal(err)
	}
	spec := out["spectrum"]
	for f := 0; f < frames; f++ {
		frame := make([]float64, win)
		for i := range frame {
			frame[i] = audio.At(f, i)
		}
		ref := DFTReference(frame)
		for b := 0; b < win/2; b++ {
			got := spec.AtComplex(f, b)
			if cmplx.Abs(got-ref[b]) > 1e-3 {
				t.Fatalf("frame %d bin %d: fft %v, dft %v", f, b, got, ref[b])
			}
		}
	}
}

func TestFFTPureTonePeaksAtItsBin(t *testing.T) {
	frames, win := 1, 128
	fft, err := NewFFT(frames, win)
	if err != nil {
		t.Fatal(err)
	}
	const bin = 9
	audio := tensor.New(tensor.Float32, frames, win)
	for i := 0; i < win; i++ {
		audio.Set(math.Sin(2*math.Pi*bin*float64(i)/float64(win)), 0, i)
	}
	out, err := fft.Run(map[string]*tensor.Tensor{"audio": audio})
	if err != nil {
		t.Fatal(err)
	}
	spec := out["spectrum"]
	best, bestMag := -1, 0.0
	for b := 0; b < win/2; b++ {
		if m := cmplx.Abs(spec.AtComplex(0, b)); m > bestMag {
			best, bestMag = b, m
		}
	}
	if best != bin {
		t.Errorf("peak at bin %d, want %d", best, bin)
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if _, err := NewFFT(1, 100); err == nil {
		t.Error("accepted window 100")
	}
}

func TestSVMDeterministicAndArgmaxConsistent(t *testing.T) {
	rows, dims, classes := 8, 16, 4
	svm := NewSVM(rows, dims, classes, 7)
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(tensor.Float32, rows, dims)
	for r := 0; r < rows; r++ {
		for d := 0; d < dims; d++ {
			x.Set(rng.NormFloat64(), r, d)
		}
	}
	out1, err := svm.Run(map[string]*tensor.Tensor{"features": x})
	if err != nil {
		t.Fatal(err)
	}
	out2, err := NewSVM(rows, dims, classes, 7).Run(map[string]*tensor.Tensor{"features": x})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(out1["labels"], out2["labels"]) {
		t.Error("same seed, different labels")
	}
	labels, scores := out1["labels"], out1["scores"]
	for r := 0; r < rows; r++ {
		lab := int(labels.At(r))
		for c := 0; c < classes; c++ {
			if scores.At(r, c) > scores.At(r, lab) {
				t.Errorf("row %d: class %d outscores label %d", r, c, lab)
			}
		}
	}
}

func TestPPOOutputsBounded(t *testing.T) {
	batch, bins, hidden, acts := 4, 32, 16, 4
	ppo := NewPPO(batch, bins, hidden, acts, 3)
	rng := rand.New(rand.NewSource(2))
	obs := tensor.New(tensor.Float32, batch, bins)
	for b := 0; b < batch; b++ {
		for i := 0; i < bins; i++ {
			obs.Set(rng.NormFloat64()*10, b, i)
		}
	}
	out, err := ppo.Run(map[string]*tensor.Tensor{"obs": obs})
	if err != nil {
		t.Fatal(err)
	}
	acts64 := out["actions"]
	for b := 0; b < batch; b++ {
		for a := 0; a < acts; a++ {
			v := acts64.At(b, a)
			if v < -1 || v > 1 {
				t.Errorf("action [%d,%d] = %v outside tanh range", b, a, v)
			}
		}
	}
}

func TestVideoRLERoundTrip(t *testing.T) {
	pixels := 1024
	rng := rand.New(rand.NewSource(5))
	yuv := tensor.New(tensor.Uint8, pixels, 3)
	// Runs of identical pixels (video-like), with occasional changes.
	var y, u, v float64
	for p := 0; p < pixels; p++ {
		if rng.Intn(16) == 0 {
			y, u, v = float64(rng.Intn(256)), float64(rng.Intn(256)), float64(rng.Intn(256))
		}
		yuv.Set(y, p, 0)
		yuv.Set(u, p, 1)
		yuv.Set(v, p, 2)
	}
	bs := EncodeRLE(yuv)
	if len(bs) >= pixels*3 {
		t.Errorf("RLE did not compress: %d bytes for %d raw", len(bs), pixels*3)
	}
	dec := NewVideoDecode(pixels)
	out, err := dec.Run(map[string]*tensor.Tensor{"bitstream": tensor.FromBytes(bs, len(bs))})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(yuv, out["yuv"]) {
		t.Error("decode(encode(yuv)) != yuv")
	}
}

func TestVideoDecodeRejectsBadStreams(t *testing.T) {
	dec := NewVideoDecode(16)
	if _, err := dec.Run(map[string]*tensor.Tensor{
		"bitstream": tensor.FromBytes([]byte{1, 2, 3}, 3),
	}); err == nil {
		t.Error("accepted truncated stream")
	}
	// Stream describing too many pixels.
	long := EncodeRLE(tensor.New(tensor.Uint8, 32, 3))
	if _, err := dec.Run(map[string]*tensor.Tensor{
		"bitstream": tensor.FromBytes(long, len(long)),
	}); err == nil {
		t.Error("accepted over-long stream")
	}
}

func TestObjectDetectShapeAndRange(t *testing.T) {
	pixels, regions, classes := 256, 4, 8
	det, err := NewObjectDetect(pixels, regions, classes, 11)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(tensor.Int8, 3, pixels)
	rng := rand.New(rand.NewSource(3))
	for c := 0; c < 3; c++ {
		for p := 0; p < pixels; p++ {
			x.Set(float64(rng.Intn(255)-127), c, p)
		}
	}
	out, err := det.Run(map[string]*tensor.Tensor{"nchw": x})
	if err != nil {
		t.Fatal(err)
	}
	d := out["detections"]
	if d.Dim(0) != regions || d.Dim(1) != classes {
		t.Fatalf("detections shape %v", d.Shape())
	}
	for r := 0; r < regions; r++ {
		for c := 0; c < classes; c++ {
			v := d.At(r, c)
			if v <= 0 || v >= 1 {
				t.Errorf("detection [%d,%d] = %v outside (0,1)", r, c, v)
			}
		}
	}
	if _, err := NewObjectDetect(100, 3, 2, 1); err == nil {
		t.Error("accepted indivisible region split")
	}
}

func TestAESGCMRoundTripAndTamperDetection(t *testing.T) {
	spec, err := NewAESGCM("test-key")
	if err != nil {
		t.Fatal(err)
	}
	plain := []byte("SSN 123-45-6789 lives here")
	ct, err := Seal("test-key", plain)
	if err != nil {
		t.Fatal(err)
	}
	out, err := spec.Run(map[string]*tensor.Tensor{"cipher": tensor.FromBytes(ct, len(ct))})
	if err != nil {
		t.Fatal(err)
	}
	if string(out["plain"].Bytes()) != string(plain) {
		t.Error("decrypt(encrypt(x)) != x")
	}
	// Bit-flip must fail authentication.
	ct[0] ^= 1
	if _, err := spec.Run(map[string]*tensor.Tensor{"cipher": tensor.FromBytes(ct, len(ct))}); err == nil {
		t.Error("tampered ciphertext accepted")
	}
}

func TestRegexRedactsPII(t *testing.T) {
	reclen := 64
	recs := [][]byte{
		[]byte("my ssn is 123-45-6789 ok"),
		[]byte("mail me at bob@example.com today"),
		[]byte("call (619) 555-0100 now"),
		[]byte("nothing sensitive here at all"),
	}
	raw := make([]byte, 0, len(recs)*reclen)
	for _, r := range recs {
		padded := make([]byte, reclen)
		copy(padded, r)
		for i := len(r); i < reclen; i++ {
			padded[i] = ' '
		}
		raw = append(raw, padded...)
	}
	spec := NewRegexRedact(len(recs), reclen)
	out, err := spec.Run(map[string]*tensor.Tensor{
		"records": tensor.FromBytes(raw, len(recs), reclen),
	})
	if err != nil {
		t.Fatal(err)
	}
	red := out["redacted"].Bytes()
	matches := out["matches"]
	if string(red[:reclen][10:21]) != "XXXXXXXXXXX" {
		t.Errorf("SSN not redacted: %q", red[:24])
	}
	wantMatches := []float64{1, 1, 1, 0}
	for i, w := range wantMatches {
		if got := matches.At(i); got != w {
			t.Errorf("record %d matches = %v, want %v", i, got, w)
		}
	}
	// Non-PII text untouched.
	if string(red[3*reclen:3*reclen+7]) != "nothing" {
		t.Error("clean record was modified")
	}
}

func TestGzipRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	plain := make([]byte, 4096)
	for i := range plain {
		plain[i] = byte('a' + rng.Intn(4)) // compressible
	}
	gz, err := Compress(plain)
	if err != nil {
		t.Fatal(err)
	}
	if len(gz) >= len(plain) {
		t.Errorf("gzip did not compress: %d vs %d", len(gz), len(plain))
	}
	spec := NewGzipDecompress(len(plain))
	out, err := spec.Run(map[string]*tensor.Tensor{"gz": tensor.FromBytes(gz, len(gz))})
	if err != nil {
		t.Fatal(err)
	}
	if string(out["rows"].Bytes()) != string(plain) {
		t.Error("decompress(compress(x)) != x")
	}
	// Wrong expected size must error.
	bad := NewGzipDecompress(len(plain) - 1)
	if _, err := bad.Run(map[string]*tensor.Tensor{"gz": tensor.FromBytes(gz, len(gz))}); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestHashJoinMatchesOracle(t *testing.T) {
	n, payBytes, innerRows := 512, 8, 128
	const keySpace = 1024
	const seed = 77
	spec := NewHashJoin(n, payBytes, innerRows, keySpace, seed)
	oracle := InnerTable(innerRows, keySpace, seed)

	rng := rand.New(rand.NewSource(13))
	keys := tensor.New(tensor.Int32, n)
	amounts := tensor.New(tensor.Int32, n)
	for i := 0; i < n; i++ {
		keys.Set(float64(rng.Int31n(keySpace)), i)
		amounts.Set(float64(rng.Int31n(1000)), i)
	}
	pay := tensor.New(tensor.Uint8, payBytes, n)
	out, err := spec.Run(map[string]*tensor.Tensor{"keys": keys, "amounts": amounts, "paycol": pay})
	if err != nil {
		t.Fatal(err)
	}
	joined := out["joined"]
	var hits int
	var wantSum int64
	for i := 0; i < n; i++ {
		k := int32(keys.At(i))
		want := float64(-1)
		if v, ok := oracle[k]; ok {
			want = float64(v)
			wantSum += int64(amounts.At(i))
			hits++
		}
		// int32 stored via float64: compare in int32 space.
		if int32(joined.At(i)) != int32(want) {
			t.Fatalf("probe %d key %d: joined %v, want %v", i, k, joined.At(i), want)
		}
	}
	if int(out["hits"].At(0)) != hits {
		t.Errorf("hits = %v, oracle %d", out["hits"].At(0), hits)
	}
	if int64(out["sum"].At(0)) != wantSum {
		t.Errorf("sum = %v, oracle %d", out["sum"].At(0), wantSum)
	}
	if hits == 0 || hits == n {
		t.Errorf("degenerate hit rate %d/%d; workload not exercising both paths", hits, n)
	}
}

func TestBERTNERDeterministicShape(t *testing.T) {
	nseq, seqlen, dim := 2, 16, 8
	ner := NewBERTNER(nseq, seqlen, dim, 21)
	tok := tensor.New(tensor.Int32, nseq, seqlen)
	rng := rand.New(rand.NewSource(4))
	for s := 0; s < nseq; s++ {
		for i := 0; i < seqlen; i++ {
			tok.Set(float64(rng.Intn(256)), s, i)
		}
	}
	out1, err := ner.Run(map[string]*tensor.Tensor{"tokens": tok})
	if err != nil {
		t.Fatal(err)
	}
	out2, err := NewBERTNER(nseq, seqlen, dim, 21).Run(map[string]*tensor.Tensor{"tokens": tok})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(out1["tags"], out2["tags"]) {
		t.Error("same seed, different tags")
	}
	tags := out1["tags"]
	for s := 0; s < nseq; s++ {
		for i := 0; i < seqlen; i++ {
			v := tags.At(s, i)
			if v != 0 && v != 1 {
				t.Errorf("tag [%d,%d] = %v not binary", s, i, v)
			}
		}
	}
}

func TestLatencyModelSane(t *testing.T) {
	fft, _ := NewFFT(1, 64)
	l1 := fft.Latency(1 << 20)
	l2 := fft.Latency(8 << 20)
	if l2 <= l1 {
		t.Error("latency not increasing with batch size")
	}
	if fft.CPULatency(1<<20) <= l1 {
		t.Error("CPU latency not slower than accelerator")
	}
	if fft.Energy(sim.Second) != fft.PowerW {
		t.Error("energy over 1s must equal power")
	}
}

func TestGeomeanSpeedupNearPaper(t *testing.T) {
	fft, _ := NewFFT(1, 64)
	det, _ := NewObjectDetect(256, 4, 8, 1)
	aes, _ := NewAESGCM("k")
	pool := []*Spec{
		NewVideoDecode(16), det, fft, NewSVM(1, 1, 2, 1), NewPPO(1, 1, 1, 1, 1),
		aes, NewRegexRedact(1, 8), NewGzipDecompress(1),
		NewHashJoin(1, 1, 1, 10, 1), NewBERTNER(1, 1, 4, 1),
	}
	g := GeomeanSpeedup(pool)
	// Paper reports 6.5x geometric mean per-accelerator speedup.
	if g < 5.5 || g > 7.5 {
		t.Errorf("geomean speedup %.2f, want ~6.5", g)
	}
}

// Property: Latency is additive-monotone — more bytes never run faster.
func TestLatencyMonotoneProperty(t *testing.T) {
	spec := NewRegexRedact(1, 8)
	prop := func(a, b uint32) bool {
		x, y := int64(a%(1<<24)), int64(b%(1<<24))
		if x > y {
			x, y = y, x
		}
		return spec.Latency(x) <= spec.Latency(y)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
