package accel

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"dmx/internal/sim"
	"dmx/internal/tensor"
)

// NewVideoDecode builds the video-codec hard-IP of Video Surveillance.
// The functional stand-in decodes a run-length-encoded YUV stream: the
// bitstream is a sequence of (count:u16, y:u8, u:u8, v:u8) records whose
// counts sum to the frame's pixel count. That exercises a real
// decompress-style data dependency while staying far simpler than H.264 —
// what matters downstream is the decoded pixel tensor's size and layout.
//
// Input: "bitstream" uint8[n]. Output: "yuv" uint8[pixels, 3].
func NewVideoDecode(pixels int) *Spec {
	return &Spec{
		Name:           "video-decode",
		ThroughputBPS:  1.5e9, // hard-IP codec, ~2 HD frames per few ms
		Speedup:        2.5,   // hard IP gains the least over software decode (Fig. 11)
		PowerW:         12,
		LaunchOverhead: 15 * sim.Microsecond,
		Run: func(in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
			bs, err := getIn("video-decode", in, "bitstream")
			if err != nil {
				return nil, err
			}
			raw := bs.Contiguous().Bytes()
			if len(raw)%5 != 0 {
				return nil, fmt.Errorf("accel: video-decode: bitstream length %d not a whole number of records", len(raw))
			}
			out := tensor.New(tensor.Uint8, pixels, 3)
			p := 0
			for off := 0; off+5 <= len(raw); off += 5 {
				count := int(binary.LittleEndian.Uint16(raw[off:]))
				y, u, v := raw[off+2], raw[off+3], raw[off+4]
				for i := 0; i < count; i++ {
					if p >= pixels {
						return nil, fmt.Errorf("accel: video-decode: stream decodes past %d pixels", pixels)
					}
					out.Set(float64(y), p, 0)
					out.Set(float64(u), p, 1)
					out.Set(float64(v), p, 2)
					p++
				}
			}
			if p != pixels {
				return nil, fmt.Errorf("accel: video-decode: stream decoded %d of %d pixels", p, pixels)
			}
			return map[string]*tensor.Tensor{"yuv": out}, nil
		},
	}
}

// EncodeRLE produces a bitstream NewVideoDecode accepts, for the workload
// generator: consecutive equal YUV pixels collapse into one record.
func EncodeRLE(yuv *tensor.Tensor) []byte {
	pixels := yuv.Dim(0)
	var out []byte
	emit := func(count int, y, u, v byte) {
		var rec [5]byte
		binary.LittleEndian.PutUint16(rec[:], uint16(count))
		rec[2], rec[3], rec[4] = y, u, v
		out = append(out, rec[:]...)
	}
	i := 0
	for i < pixels {
		y := byte(yuv.At(i, 0))
		u := byte(yuv.At(i, 1))
		v := byte(yuv.At(i, 2))
		run := 1
		for i+run < pixels && run < 65535 &&
			byte(yuv.At(i+run, 0)) == y && byte(yuv.At(i+run, 1)) == u && byte(yuv.At(i+run, 2)) == v {
			run++
		}
		emit(run, y, u, v)
		i += run
	}
	return out
}

// NewObjectDetect builds the DNN object-detection accelerator: a seeded
// linear detection head over the quantized channel-first frame, scoring
// `classes` object categories per spatial region.
//
// Input: "nchw" int8[3, pixels]. Output: "detections"
// float32[regions, classes].
func NewObjectDetect(pixels, regions, classes int, seed int64) (*Spec, error) {
	if pixels%regions != 0 {
		return nil, fmt.Errorf("accel: object-detect: %d pixels not divisible into %d regions", pixels, regions)
	}
	regionPix := pixels / regions
	rng := rand.New(rand.NewSource(seed))
	// Per-class weights over (channel, position-in-region).
	w := make([][]float64, classes)
	for c := range w {
		w[c] = make([]float64, 3*regionPix)
		for i := range w[c] {
			w[c][i] = rng.NormFloat64() / math.Sqrt(float64(3*regionPix))
		}
	}
	return &Spec{
		Name:           "object-detect",
		ThroughputBPS:  0.8e9, // DNN inference over full frames
		Speedup:        9.0,
		PowerW:         30,
		LaunchOverhead: 20 * sim.Microsecond,
		Run: func(in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
			x, err := getIn("object-detect", in, "nchw")
			if err != nil {
				return nil, err
			}
			if x.Dim(0) != 3 || x.Dim(1) != pixels {
				return nil, fmt.Errorf("accel: object-detect: input shape %v, want [3 %d]", x.Shape(), pixels)
			}
			det := tensor.New(tensor.Float32, regions, classes)
			for r := 0; r < regions; r++ {
				for c := 0; c < classes; c++ {
					var acc float64
					for ch := 0; ch < 3; ch++ {
						base := r * regionPix
						for i := 0; i < regionPix; i++ {
							acc += x.At(ch, base+i) / 127.0 * w[c][ch*regionPix+i]
						}
					}
					det.Set(sigmoid(acc), r, c)
				}
			}
			return map[string]*tensor.Tensor{"detections": det}, nil
		},
	}, nil
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
