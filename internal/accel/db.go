package accel

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"math/rand"

	"dmx/internal/sim"
	"dmx/internal/tensor"
)

// NewGzipDecompress builds the table-decompression accelerator of
// Database Hash Join, a real DEFLATE decoder via the standard library
// (the paper uses the Vitis GZip kernel). The decompressed size is fixed
// by the pipeline's static shapes.
//
// Input: "gz" uint8[m]. Output: "rows" uint8[outBytes].
func NewGzipDecompress(outBytes int) *Spec {
	return &Spec{
		Name:           "gzip",
		ThroughputBPS:  2.0e9,
		Speedup:        6.0,
		PowerW:         16,
		LaunchOverhead: 10 * sim.Microsecond,
		Run: func(in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
			gz, err := getIn("gzip", in, "gz")
			if err != nil {
				return nil, err
			}
			zr, err := gzip.NewReader(bytes.NewReader(gz.Contiguous().Bytes()))
			if err != nil {
				return nil, fmt.Errorf("accel: gzip: %w", err)
			}
			defer zr.Close()
			plain, err := io.ReadAll(zr)
			if err != nil {
				return nil, fmt.Errorf("accel: gzip: %w", err)
			}
			if len(plain) != outBytes {
				return nil, fmt.Errorf("accel: gzip: decompressed %d bytes, pipeline expects %d", len(plain), outBytes)
			}
			return map[string]*tensor.Tensor{"rows": tensor.FromBytes(plain, outBytes)}, nil
		},
	}
}

// Compress produces a gzip blob for the workload generator.
func Compress(plain []byte) ([]byte, error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(plain); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// NewHashJoin builds the join accelerator: an inner (build-side) table
// of innerRows seeded random keys with int32 values is built once; each
// probe key that hits emits its matched value, misses emit -1, and the
// amounts of matching rows aggregate into a running sum (the GROUP-BY
// style reduction a join pipeline feeds).
//
// Inputs: "keys" int32[n], "amounts" int32[n], "paycol" uint8[payBytes, n].
// Outputs: "joined" int32[n] (matched inner value or -1), "hits" int32[1],
// "sum" int64[1] (aggregate of matching rows' amounts).
func NewHashJoin(n, payBytes, innerRows int, keySpace int32, seed int64) *Spec {
	rng := rand.New(rand.NewSource(seed))
	inner := make(map[int32]int32, innerRows)
	for len(inner) < innerRows {
		inner[rng.Int31n(keySpace)] = rng.Int31()
	}
	return &Spec{
		Name:           "hash-join",
		ThroughputBPS:  2.5e9,
		Speedup:        7.0,
		PowerW:         20,
		LaunchOverhead: 12 * sim.Microsecond,
		Run: func(in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
			keys, err := getIn("hash-join", in, "keys")
			if err != nil {
				return nil, err
			}
			if keys.Dim(0) != n {
				return nil, fmt.Errorf("accel: hash-join: %d probe keys, want %d", keys.Dim(0), n)
			}
			amounts, err := getIn("hash-join", in, "amounts")
			if err != nil {
				return nil, err
			}
			if amounts.Dim(0) != n {
				return nil, fmt.Errorf("accel: hash-join: %d amounts, want %d", amounts.Dim(0), n)
			}
			pay, err := getIn("hash-join", in, "paycol")
			if err != nil {
				return nil, err
			}
			if pay.Dim(0) != payBytes || pay.Dim(1) != n {
				return nil, fmt.Errorf("accel: hash-join: payload shape %v, want [%d %d]", pay.Shape(), payBytes, n)
			}
			joined := tensor.New(tensor.Int32, n)
			hits := tensor.New(tensor.Int32, 1)
			sum := tensor.New(tensor.Int64, 1)
			var count int32
			var total int64
			for i := 0; i < n; i++ {
				k := int32(keys.At(i))
				if v, ok := inner[k]; ok {
					joined.Set(float64(v), i)
					total += int64(amounts.At(i))
					count++
				} else {
					joined.Set(-1, i)
				}
			}
			hits.Set(float64(count), 0)
			sum.Set(float64(total), 0)
			return map[string]*tensor.Tensor{"joined": joined, "hits": hits, "sum": sum}, nil
		},
	}
}

// InnerTable exposes the build side for test oracles: it regenerates the
// same seeded table NewHashJoin builds.
func InnerTable(innerRows int, keySpace int32, seed int64) map[int32]int32 {
	rng := rand.New(rand.NewSource(seed))
	inner := make(map[int32]int32, innerRows)
	for len(inner) < innerRows {
		inner[rng.Int31n(keySpace)] = rng.Int31()
	}
	return inner
}
