package accel

import (
	"fmt"
	"math"
	"math/rand"

	"dmx/internal/sim"
	"dmx/internal/tensor"
)

// The paper's conclusion points at multimodal generative-AI pipelines —
// "multiple models and ... acceleration beyond neural networks (e.g.,
// vector database lookups, search)" — as the next cross-domain chains
// DMX serves. These two kernels realize that future-work pipeline: an
// embedding model and a vector-search (retrieval) accelerator, chained
// by an embedding normalize-and-quantize restructuring
// (restructure.VecNormalize).

// NewEmbedder builds the embedding-model accelerator: token sequences
// become mean-pooled dense query embeddings (seeded embedding table, the
// usual first stage of a retrieval pipeline).
//
// Input: "tokens" int32[nq, seqlen]. Output: "embeddings" float32[nq, dim].
func NewEmbedder(nq, seqlen, dim int, seed int64) *Spec {
	rng := rand.New(rand.NewSource(seed))
	const vocab = 512
	table := randMat(rng, vocab, dim, 0.5)
	return &Spec{
		Name:           "embedder",
		ThroughputBPS:  1.0e9,
		Speedup:        8.0,
		PowerW:         28,
		LaunchOverhead: 25 * sim.Microsecond,
		Run: func(in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
			tok, err := getIn("embedder", in, "tokens")
			if err != nil {
				return nil, err
			}
			if tok.Dim(0) != nq || tok.Dim(1) != seqlen {
				return nil, fmt.Errorf("accel: embedder: input shape %v, want [%d %d]", tok.Shape(), nq, seqlen)
			}
			out := tensor.New(tensor.Float32, nq, dim)
			acc := make([]float64, dim)
			for q := 0; q < nq; q++ {
				for d := range acc {
					acc[d] = 0
				}
				for tpos := 0; tpos < seqlen; tpos++ {
					row := table[int(tok.At(q, tpos))&(vocab-1)]
					for d := 0; d < dim; d++ {
						acc[d] += row[d]
					}
				}
				for d := 0; d < dim; d++ {
					out.Set(acc[d]/float64(seqlen), q, d)
				}
			}
			return map[string]*tensor.Tensor{"embeddings": out}, nil
		},
	}
}

// NewVectorSearch builds the retrieval accelerator: each int8 query
// vector scans a seeded int8 corpus by dot product and reports the
// best-matching corpus index and its score — the vector-database lookup
// the paper's conclusion names.
//
// Inputs: "queries" int8[nq, dim]. Outputs: "ids" int32[nq],
// "scores" int32[nq].
func NewVectorSearch(nq, dim, corpus int, seed int64) *Spec {
	db := corpusVectors(corpus, dim, seed)
	return &Spec{
		Name:           "vector-search",
		ThroughputBPS:  3.0e9,
		Speedup:        11.0,
		PowerW:         24,
		LaunchOverhead: 15 * sim.Microsecond,
		Run: func(in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
			q, err := getIn("vector-search", in, "queries")
			if err != nil {
				return nil, err
			}
			if q.Dim(0) != nq || q.Dim(1) != dim {
				return nil, fmt.Errorf("accel: vector-search: input shape %v, want [%d %d]", q.Shape(), nq, dim)
			}
			ids := tensor.New(tensor.Int32, nq)
			scores := tensor.New(tensor.Int32, nq)
			qv := make([]int32, dim)
			for i := 0; i < nq; i++ {
				for d := 0; d < dim; d++ {
					qv[d] = int32(q.At(i, d))
				}
				bestID, bestScore := 0, int32(math.MinInt32)
				for c := 0; c < corpus; c++ {
					var dot int32
					row := db[c]
					for d := 0; d < dim; d++ {
						dot += qv[d] * int32(row[d])
					}
					if dot > bestScore {
						bestID, bestScore = c, dot
					}
				}
				ids.Set(float64(bestID), i)
				scores.Set(float64(bestScore), i)
			}
			return map[string]*tensor.Tensor{"ids": ids, "scores": scores}, nil
		},
	}
}

// corpusVectors regenerates the seeded int8 corpus; exported via
// CorpusVector for test oracles and needle-planting.
func corpusVectors(corpus, dim int, seed int64) [][]int8 {
	rng := rand.New(rand.NewSource(seed))
	db := make([][]int8, corpus)
	for c := range db {
		db[c] = make([]int8, dim)
		for d := range db[c] {
			db[c][d] = int8(rng.Intn(255) - 127)
		}
	}
	return db
}

// CorpusVector returns corpus vector c of the seeded database
// NewVectorSearch(..., corpus, seed) scans.
func CorpusVector(corpus, dim int, seed int64, c int) []int8 {
	return corpusVectors(corpus, dim, seed)[c]
}
