package accel

import (
	"fmt"
	"math"

	"dmx/internal/sim"
	"dmx/internal/tensor"
)

// Spec describes one accelerator: identity, performance model, and the
// functional kernel.
type Spec struct {
	// Name identifies the accelerator ("fft", "svm", ...).
	Name string
	// ThroughputBPS is the FPGA implementation's sustained input
	// consumption rate at 250 MHz.
	ThroughputBPS float64
	// Speedup is the accelerator's gain over the 16-core Xeon software
	// implementation of the same kernel (used by the All-CPU baseline).
	Speedup float64
	// PowerW is the post-synthesis FPGA power while the kernel runs.
	PowerW float64
	// LaunchOverhead covers kernel dispatch on the device.
	LaunchOverhead sim.Duration
	// Run executes the kernel functionally over named tensors.
	Run func(in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error)
}

// Latency models one batch on the FPGA accelerator.
func (s *Spec) Latency(batchBytes int64) sim.Duration {
	return s.LaunchOverhead + sim.BytesAt(batchBytes, s.ThroughputBPS)
}

// CPULatency models the same batch executed in software on the host —
// the All-CPU configuration of Fig. 3.
func (s *Spec) CPULatency(batchBytes int64) sim.Duration {
	return sim.Duration(float64(s.Latency(batchBytes)) * s.Speedup)
}

// Energy charges the accelerator's power over a runtime.
func (s *Spec) Energy(d sim.Duration) float64 {
	return s.PowerW * d.Seconds()
}

func (s *Spec) String() string {
	return fmt.Sprintf("%s (%.1f GB/s, %.1fx vs CPU, %.0f W)",
		s.Name, s.ThroughputBPS/1e9, s.Speedup, s.PowerW)
}

// GeomeanSpeedup reports the geometric-mean speedup over a set of specs
// (the paper's 6.5× headline for its accelerator pool).
func GeomeanSpeedup(specs []*Spec) float64 {
	if len(specs) == 0 {
		return 0
	}
	var acc float64
	for _, s := range specs {
		acc += math.Log(s.Speedup)
	}
	return math.Exp(acc / float64(len(specs)))
}

// missing reports a friendly error for an absent kernel input.
func missing(kernel, name string) error {
	return fmt.Errorf("accel: %s: missing input %q", kernel, name)
}

func getIn(kernel string, in map[string]*tensor.Tensor, name string) (*tensor.Tensor, error) {
	t, ok := in[name]
	if !ok {
		return nil, missing(kernel, name)
	}
	return t, nil
}
