package accel

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"fmt"
	"math"
	"math/rand"
	"regexp"

	"dmx/internal/sim"
	"dmx/internal/tensor"
)

// DeriveKey expands a deterministic seed string into an AES-256 key, so
// the workload generator and the accelerator agree without shared state.
func DeriveKey(seed string) []byte {
	sum := sha256.Sum256([]byte("dmx-aes:" + seed))
	return sum[:]
}

// DeriveNonce expands a seed string into a 12-byte GCM nonce.
func DeriveNonce(seed string) []byte {
	sum := sha256.Sum256([]byte("dmx-nonce:" + seed))
	return sum[:12]
}

// NewAESGCM builds the decryption accelerator of Personal Info
// Redaction, a real AES-256-GCM using the standard library (the paper
// uses the Vitis AES-GCM HLS kernel).
//
// Input: "cipher" uint8[n] (ciphertext||tag). Output: "plain" uint8[n-16].
func NewAESGCM(keySeed string) (*Spec, error) {
	block, err := aes.NewCipher(DeriveKey(keySeed))
	if err != nil {
		return nil, fmt.Errorf("accel: aes-gcm: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("accel: aes-gcm: %w", err)
	}
	nonce := DeriveNonce(keySeed)
	return &Spec{
		Name:           "aes-gcm",
		ThroughputBPS:  5.0e9,
		Speedup:        12.0,
		PowerW:         10,
		LaunchOverhead: 6 * sim.Microsecond,
		Run: func(in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
			ct, err := getIn("aes-gcm", in, "cipher")
			if err != nil {
				return nil, err
			}
			plain, err := gcm.Open(nil, nonce, ct.Contiguous().Bytes(), nil)
			if err != nil {
				return nil, fmt.Errorf("accel: aes-gcm: authentication failed: %w", err)
			}
			return map[string]*tensor.Tensor{
				"plain": tensor.FromBytes(plain, len(plain)),
			}, nil
		},
	}, nil
}

// Seal encrypts a plaintext with the same derived key/nonce, for the
// workload generator.
func Seal(keySeed string, plain []byte) ([]byte, error) {
	block, err := aes.NewCipher(DeriveKey(keySeed))
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return gcm.Seal(nil, DeriveNonce(keySeed), plain, nil), nil
}

// PII patterns the redaction accelerator scans for.
var piiPatterns = []*regexp.Regexp{
	regexp.MustCompile(`\d{3}-\d{2}-\d{4}`),                    // SSN
	regexp.MustCompile(`[A-Za-z0-9._]+@[A-Za-z0-9.]+\.[a-z]+`), // email
	regexp.MustCompile(`\(\d{3}\) \d{3}-\d{4}`),                // phone
}

// NewRegexRedact builds the PII-detection accelerator: each fixed-width
// record is scanned with the pattern set and matches are blanked with
// 'X' (Sec. VI: "detect personally identifiable information and redact
// them from the text with blanks").
//
// Input: "records" uint8[nrec, reclen]. Outputs: "redacted"
// uint8[nrec, reclen], "matches" int32[nrec].
func NewRegexRedact(nrec, reclen int) *Spec {
	return &Spec{
		Name:           "regex",
		ThroughputBPS:  1.5e9, // the throughput limiter of PIR (Fig. 13)
		Speedup:        4.0,
		PowerW:         14,
		LaunchOverhead: 8 * sim.Microsecond,
		Run: func(in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
			recs, err := getIn("regex", in, "records")
			if err != nil {
				return nil, err
			}
			if recs.Dim(0) != nrec || recs.Dim(1) != reclen {
				return nil, fmt.Errorf("accel: regex: input shape %v, want [%d %d]", recs.Shape(), nrec, reclen)
			}
			raw := append([]byte(nil), recs.Contiguous().Bytes()...)
			matches := tensor.New(tensor.Int32, nrec)
			for r := 0; r < nrec; r++ {
				rec := raw[r*reclen : (r+1)*reclen]
				count := 0
				for _, pat := range piiPatterns {
					for _, loc := range pat.FindAllIndex(rec, -1) {
						count++
						for i := loc[0]; i < loc[1]; i++ {
							rec[i] = 'X'
						}
					}
				}
				matches.Set(float64(count), r)
			}
			return map[string]*tensor.Tensor{
				"redacted": tensor.FromBytes(raw, nrec, reclen),
				"matches":  matches,
			}, nil
		},
	}
}

// NewBERTNER builds the Fig. 16 extension kernel: a single-layer
// transformer encoder (one self-attention head plus a feed-forward
// block, seeded weights) tagging each token as entity/non-entity. A toy
// stand-in for the fine-tuned BERT the paper cites, with the same
// data-flow shape: token IDs in, per-token tags out.
//
// Input: "tokens" int32[nseq, seqlen]. Output: "tags" int32[nseq, seqlen].
func NewBERTNER(nseq, seqlen, dim int, seed int64) *Spec {
	rng := rand.New(rand.NewSource(seed))
	const vocab = 256
	embed := randMat(rng, vocab, dim, 0.3)
	wq := randMat(rng, dim, dim, 1/math.Sqrt(float64(dim)))
	wk := randMat(rng, dim, dim, 1/math.Sqrt(float64(dim)))
	wv := randMat(rng, dim, dim, 1/math.Sqrt(float64(dim)))
	wff := randMat(rng, dim, dim, 1/math.Sqrt(float64(dim)))
	wtag := randMat(rng, dim, 2, 1/math.Sqrt(float64(dim)))
	return &Spec{
		Name:           "bert-ner",
		ThroughputBPS:  2.0e9,
		Speedup:        10.0,
		PowerW:         35,
		LaunchOverhead: 30 * sim.Microsecond,
		Run: func(in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
			tok, err := getIn("bert-ner", in, "tokens")
			if err != nil {
				return nil, err
			}
			if tok.Dim(0) != nseq || tok.Dim(1) != seqlen {
				return nil, fmt.Errorf("accel: bert-ner: input shape %v, want [%d %d]", tok.Shape(), nseq, seqlen)
			}
			tags := tensor.New(tensor.Int32, nseq, seqlen)
			x := make([][]float64, seqlen)
			q := make([][]float64, seqlen)
			k := make([][]float64, seqlen)
			v := make([][]float64, seqlen)
			att := make([][]float64, seqlen)
			for s := 0; s < nseq; s++ {
				for t := 0; t < seqlen; t++ {
					id := int(tok.At(s, t)) & (vocab - 1)
					x[t] = embed[id]
				}
				for t := 0; t < seqlen; t++ {
					q[t] = matVec(wq, x[t])
					k[t] = matVec(wk, x[t])
					v[t] = matVec(wv, x[t])
				}
				scale := 1 / math.Sqrt(float64(dim))
				for t := 0; t < seqlen; t++ {
					// Softmax attention over the sequence.
					logits := make([]float64, seqlen)
					maxL := math.Inf(-1)
					for u := 0; u < seqlen; u++ {
						logits[u] = dot(q[t], k[u]) * scale
						if logits[u] > maxL {
							maxL = logits[u]
						}
					}
					var z float64
					for u := range logits {
						logits[u] = math.Exp(logits[u] - maxL)
						z += logits[u]
					}
					ctx := make([]float64, dim)
					for u := 0; u < seqlen; u++ {
						wgt := logits[u] / z
						for d := 0; d < dim; d++ {
							ctx[d] += wgt * v[u][d]
						}
					}
					att[t] = ctx
				}
				for t := 0; t < seqlen; t++ {
					h := matVec(wff, att[t])
					for d := range h {
						if h[d] < 0 {
							h[d] = 0 // ReLU
						}
					}
					score := matVec(wtag, h)
					tag := 0.0
					if score[1] > score[0] {
						tag = 1
					}
					tags.Set(tag, s, t)
				}
			}
			return map[string]*tensor.Tensor{"tags": tags}, nil
		},
	}
}

func matVec(w [][]float64, x []float64) []float64 {
	cols := len(w[0])
	out := make([]float64, cols)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := w[i]
		for j := 0; j < cols; j++ {
			out[j] += xi * row[j]
		}
	}
	return out
}

func dot(a, b []float64) float64 {
	var acc float64
	for i := range a {
		acc += a[i] * b[i]
	}
	return acc
}
