package accel

import (
	"fmt"
	"math"
	"math/rand"

	"dmx/internal/sim"
	"dmx/internal/tensor"
)

// NewFFT builds the short-time Fourier transform accelerator used by the
// Sound Detection and Brain Stimulation pipelines: each row of the input
// (a windowed frame of win real samples, win a power of two) becomes the
// positive-frequency half of its DFT.
//
// Input: "audio" float32[frames, win]. Output: "spectrum"
// complex64[frames, win/2].
func NewFFT(frames, win int) (*Spec, error) {
	if win <= 0 || win&(win-1) != 0 {
		return nil, fmt.Errorf("accel: fft window %d must be a power of two", win)
	}
	return &Spec{
		Name:           "fft",
		ThroughputBPS:  3.0e9,
		Speedup:        8.0,
		PowerW:         18,
		LaunchOverhead: 10 * sim.Microsecond,
		Run: func(in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
			audio, err := getIn("fft", in, "audio")
			if err != nil {
				return nil, err
			}
			if audio.Dim(0) != frames || audio.Dim(1) != win {
				return nil, fmt.Errorf("accel: fft: input shape %v, want [%d %d]", audio.Shape(), frames, win)
			}
			out := tensor.New(tensor.Complex64, frames, win/2)
			buf := make([]complex128, win)
			for f := 0; f < frames; f++ {
				for i := 0; i < win; i++ {
					buf[i] = complex(audio.At(f, i), 0)
				}
				fftInPlace(buf)
				for b := 0; b < win/2; b++ {
					out.SetComplex(buf[b], f, b)
				}
			}
			return map[string]*tensor.Tensor{"spectrum": out}, nil
		},
	}, nil
}

// fftInPlace is an iterative radix-2 Cooley-Tukey DFT.
func fftInPlace(a []complex128) {
	n := len(a)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := complex(math.Cos(ang), math.Sin(ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := a[i+j]
				v := a[i+j+length/2] * w
				a[i+j] = u + v
				a[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
}

// DFTReference computes a direct O(n²) DFT of one real frame — the
// oracle the FFT accelerator is validated against in tests.
func DFTReference(frame []float64) []complex128 {
	n := len(frame)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			acc += complex(frame[t]*math.Cos(ang), frame[t]*math.Sin(ang))
		}
		out[k] = acc
	}
	return out
}

// NewSVM builds the linear multi-class SVM of Sound Detection: scores =
// X·W + b with seeded deterministic weights, argmax per row.
//
// Input: "features" float32[rows, dims]. Output: "labels" int32[rows],
// "scores" float32[rows, classes].
func NewSVM(rows, dims, classes int, seed int64) *Spec {
	rng := rand.New(rand.NewSource(seed))
	w := make([][]float64, dims)
	for d := range w {
		w[d] = make([]float64, classes)
		for c := range w[d] {
			w[d][c] = rng.NormFloat64() * 0.1
		}
	}
	bias := make([]float64, classes)
	for c := range bias {
		bias[c] = rng.NormFloat64() * 0.01
	}
	return &Spec{
		Name:           "svm",
		ThroughputBPS:  4.0e9,
		Speedup:        7.0,
		PowerW:         15,
		LaunchOverhead: 8 * sim.Microsecond,
		Run: func(in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
			x, err := getIn("svm", in, "features")
			if err != nil {
				return nil, err
			}
			if x.Dim(0) != rows || x.Dim(1) != dims {
				return nil, fmt.Errorf("accel: svm: input shape %v, want [%d %d]", x.Shape(), rows, dims)
			}
			labels := tensor.New(tensor.Int32, rows)
			scores := tensor.New(tensor.Float32, rows, classes)
			for r := 0; r < rows; r++ {
				best, bestScore := 0, math.Inf(-1)
				for c := 0; c < classes; c++ {
					acc := bias[c]
					for d := 0; d < dims; d++ {
						acc += x.At(r, d) * w[d][c]
					}
					scores.Set(acc, r, c)
					if acc > bestScore {
						best, bestScore = c, acc
					}
				}
				labels.Set(float64(best), r)
			}
			return map[string]*tensor.Tensor{"labels": labels, "scores": scores}, nil
		},
	}
}

// NewPPO builds the proximal-policy-optimization inference kernel of
// Brain Stimulation: a two-layer tanh MLP policy over normalized
// spectral observations.
//
// Input: "obs" float32[batch, bins]. Output: "actions" float32[batch, acts].
func NewPPO(batch, bins, hidden, acts int, seed int64) *Spec {
	rng := rand.New(rand.NewSource(seed))
	w1 := randMat(rng, bins, hidden, 1/math.Sqrt(float64(bins)))
	w2 := randMat(rng, hidden, acts, 1/math.Sqrt(float64(hidden)))
	return &Spec{
		Name:           "ppo",
		ThroughputBPS:  2.5e9,
		Speedup:        9.0,
		PowerW:         22,
		LaunchOverhead: 12 * sim.Microsecond,
		Run: func(in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
			obs, err := getIn("ppo", in, "obs")
			if err != nil {
				return nil, err
			}
			if obs.Dim(0) != batch || obs.Dim(1) != bins {
				return nil, fmt.Errorf("accel: ppo: input shape %v, want [%d %d]", obs.Shape(), batch, bins)
			}
			actions := tensor.New(tensor.Float32, batch, acts)
			h := make([]float64, hidden)
			for b := 0; b < batch; b++ {
				for j := 0; j < hidden; j++ {
					var acc float64
					for i := 0; i < bins; i++ {
						acc += obs.At(b, i) * w1[i][j]
					}
					h[j] = math.Tanh(acc)
				}
				for a := 0; a < acts; a++ {
					var acc float64
					for j := 0; j < hidden; j++ {
						acc += h[j] * w2[j][a]
					}
					actions.Set(math.Tanh(acc), b, a)
				}
			}
			return map[string]*tensor.Tensor{"actions": actions}, nil
		},
	}
}

func randMat(rng *rand.Rand, rows, cols int, scale float64) [][]float64 {
	m := make([][]float64, rows)
	for r := range m {
		m[r] = make([]float64, cols)
		for c := range m[r] {
			m[r][c] = rng.NormFloat64() * scale
		}
	}
	return m
}
