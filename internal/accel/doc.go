// Package accel implements the application-kernel accelerators of the
// five Table I benchmarks.
//
// Each accelerator has two faces. The functional face is a real Go
// implementation of the kernel (a working FFT, AES-GCM decryptor, regex
// redactor, hash join, ...) so that chained pipelines can be executed and
// checked end-to-end. The performance face is a calibrated analytic model
// of the FPGA implementation the paper deploys (Vitis HLS / RTL at
// 250 MHz on a VU9P) plus its CPU-execution counterpart for the All-CPU
// baseline: the paper reports a 6.5× geometric-mean per-kernel speedup
// of the accelerators over the Xeon host, and the per-kernel ratios here
// reproduce that mean while preserving the paper's outliers (the video
// hard-IP gains least — Fig. 11 — and regex limits Personal Info
// Redaction's throughput — Fig. 13).
package accel
