package tensor

// Iter walks a shape in row-major order, yielding multi-indices without
// allocating per step. It is the shared traversal engine for the view
// transforms in this package and for the reference executor in
// internal/restructure.
type Iter struct {
	shape []int
	idx   []int
	done  bool
	first bool
}

// NewIter creates an iterator over shape. Iteration covers the whole
// index space; an empty shape (scalar) yields exactly one index.
func NewIter(shape []int) *Iter {
	it := &Iter{
		shape: append([]int(nil), shape...),
		idx:   make([]int, len(shape)),
		first: true,
	}
	for _, d := range shape {
		if d == 0 {
			it.done = true
		}
	}
	return it
}

// Next advances to the next index, reporting false when exhausted.
func (it *Iter) Next() bool {
	if it.done {
		return false
	}
	if it.first {
		it.first = false
		return true
	}
	for i := len(it.idx) - 1; i >= 0; i-- {
		it.idx[i]++
		if it.idx[i] < it.shape[i] {
			return true
		}
		it.idx[i] = 0
	}
	it.done = true
	return false
}

// Index returns the current multi-index. The slice is reused across
// Next calls; copy it if it must survive.
func (it *Iter) Index() []int { return it.idx }

// Reset rewinds the iterator to the first index.
func (it *Iter) Reset() {
	for i := range it.idx {
		it.idx[i] = 0
	}
	it.first = true
	it.done = false
	for _, d := range it.shape {
		if d == 0 {
			it.done = true
		}
	}
}
