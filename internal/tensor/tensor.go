package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense N-dimensional array over a shared backing buffer.
// Views created by Transpose, Slice, and Reshape alias the same bytes;
// Contiguous materializes a view into fresh storage.
//
// Strides are expressed in elements, not bytes. A scalar has an empty
// shape. The zero Tensor is not meaningful; use New or a From* helper.
type Tensor struct {
	dtype  DType
	shape  []int
	stride []int
	data   []byte
	offset int // element offset of index (0,0,...) within data
}

// New allocates a zero-filled tensor in row-major (C) order.
func New(dtype DType, shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{
		dtype:  dtype,
		shape:  append([]int(nil), shape...),
		stride: rowMajorStrides(shape),
		data:   make([]byte, n*dtype.Size()),
	}
}

// FromBytes wraps raw bytes as a Uint8 tensor of the given shape without
// copying. The byte slice must be exactly the tensor's size.
func FromBytes(data []byte, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: %d bytes cannot fill shape %v (%d elems)", len(data), shape, n))
	}
	return &Tensor{
		dtype:  Uint8,
		shape:  append([]int(nil), shape...),
		stride: rowMajorStrides(shape),
		data:   data,
	}
}

// FromFloat32 builds a Float32 tensor initialized from vals.
func FromFloat32(vals []float32, shape ...int) *Tensor {
	t := New(Float32, shape...)
	if len(vals) != t.NumElems() {
		panic(fmt.Sprintf("tensor: %d values cannot fill shape %v", len(vals), shape))
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint32(t.data[i*4:], math.Float32bits(v))
	}
	return t
}

// FromFloat64 builds a Float64 tensor initialized from vals.
func FromFloat64(vals []float64, shape ...int) *Tensor {
	t := New(Float64, shape...)
	if len(vals) != t.NumElems() {
		panic(fmt.Sprintf("tensor: %d values cannot fill shape %v", len(vals), shape))
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint64(t.data[i*8:], math.Float64bits(v))
	}
	return t
}

// FromInt32 builds an Int32 tensor initialized from vals.
func FromInt32(vals []int32, shape ...int) *Tensor {
	t := New(Int32, shape...)
	if len(vals) != t.NumElems() {
		panic(fmt.Sprintf("tensor: %d values cannot fill shape %v", len(vals), shape))
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint32(t.data[i*4:], uint32(v))
	}
	return t
}

func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

func rowMajorStrides(shape []int) []int {
	stride := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		stride[i] = acc
		acc *= shape[i]
	}
	return stride
}

// DType reports the element type.
func (t *Tensor) DType() DType { return t.dtype }

// Rank reports the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Shape returns a copy of the tensor's dimensions.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Strides returns a copy of the element strides.
func (t *Tensor) Strides() []int { return append([]int(nil), t.stride...) }

// Dim reports the length of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// NumElems reports the total element count.
func (t *Tensor) NumElems() int {
	n := 1
	for _, d := range t.shape {
		n *= d
	}
	return n
}

// SizeBytes reports the logical payload size (elements × element size),
// independent of view aliasing.
func (t *Tensor) SizeBytes() int { return t.NumElems() * t.dtype.Size() }

// IsContiguous reports whether the tensor's elements are laid out
// row-major and densely in its backing buffer.
func (t *Tensor) IsContiguous() bool {
	acc := 1
	for i := len(t.shape) - 1; i >= 0; i-- {
		if t.shape[i] != 1 && t.stride[i] != acc {
			return false
		}
		acc *= t.shape[i]
	}
	return true
}

// Bytes exposes the backing bytes of a contiguous tensor without copying.
// It panics on non-contiguous views; call Contiguous first.
func (t *Tensor) Bytes() []byte {
	if !t.IsContiguous() {
		panic("tensor: Bytes on non-contiguous view")
	}
	es := t.dtype.Size()
	return t.data[t.offset*es : t.offset*es+t.SizeBytes()]
}

// elemIndex converts a multi-index to an element offset in data.
func (t *Tensor) elemIndex(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.shape)))
	}
	e := t.offset
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		e += x * t.stride[i]
	}
	return e
}

// At reads the element at idx as a float64. Complex tensors return the
// real part; use AtComplex for full values.
func (t *Tensor) At(idx ...int) float64 {
	return t.loadFloat(t.elemIndex(idx))
}

// Set stores v (converted to the tensor's dtype, with saturation for
// integer types) at idx.
func (t *Tensor) Set(v float64, idx ...int) {
	t.storeFloat(t.elemIndex(idx), v)
}

// AtComplex reads the element at idx as a complex128.
func (t *Tensor) AtComplex(idx ...int) complex128 {
	e := t.elemIndex(idx)
	if t.dtype == Complex64 {
		b := t.data[e*8:]
		re := math.Float32frombits(binary.LittleEndian.Uint32(b))
		im := math.Float32frombits(binary.LittleEndian.Uint32(b[4:]))
		return complex(float64(re), float64(im))
	}
	return complex(t.loadFloat(e), 0)
}

// SetComplex stores v at idx; the tensor must be Complex64.
func (t *Tensor) SetComplex(v complex128, idx ...int) {
	if t.dtype != Complex64 {
		panic("tensor: SetComplex on non-complex tensor")
	}
	e := t.elemIndex(idx)
	b := t.data[e*8:]
	binary.LittleEndian.PutUint32(b, math.Float32bits(float32(real(v))))
	binary.LittleEndian.PutUint32(b[4:], math.Float32bits(float32(imag(v))))
}

func (t *Tensor) loadFloat(e int) float64 {
	switch t.dtype {
	case Uint8:
		return float64(t.data[e])
	case Int8:
		return float64(int8(t.data[e]))
	case Int16:
		return float64(int16(binary.LittleEndian.Uint16(t.data[e*2:])))
	case Int32:
		return float64(int32(binary.LittleEndian.Uint32(t.data[e*4:])))
	case Int64:
		return float64(int64(binary.LittleEndian.Uint64(t.data[e*8:])))
	case Float32:
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(t.data[e*4:])))
	case Float64:
		return math.Float64frombits(binary.LittleEndian.Uint64(t.data[e*8:]))
	case Complex64:
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(t.data[e*8:])))
	}
	panic("tensor: unknown dtype")
}

func (t *Tensor) storeFloat(e int, v float64) {
	switch t.dtype {
	case Uint8:
		t.data[e] = uint8(clamp(v, 0, 255))
	case Int8:
		t.data[e] = byte(int8(clamp(v, -128, 127)))
	case Int16:
		binary.LittleEndian.PutUint16(t.data[e*2:], uint16(int16(clamp(v, math.MinInt16, math.MaxInt16))))
	case Int32:
		binary.LittleEndian.PutUint32(t.data[e*4:], uint32(int32(clamp(v, math.MinInt32, math.MaxInt32))))
	case Int64:
		binary.LittleEndian.PutUint64(t.data[e*8:], uint64(int64(v)))
	case Float32:
		binary.LittleEndian.PutUint32(t.data[e*4:], math.Float32bits(float32(v)))
	case Float64:
		binary.LittleEndian.PutUint64(t.data[e*8:], math.Float64bits(v))
	case Complex64:
		binary.LittleEndian.PutUint32(t.data[e*8:], math.Float32bits(float32(v)))
		binary.LittleEndian.PutUint32(t.data[e*8+4:], 0)
	default:
		panic("tensor: unknown dtype")
	}
}

func clamp(v, lo, hi float64) float64 {
	// Round half away from zero before saturating, matching the rounding
	// DRX's typecast unit and AVX pack instructions perform.
	v = math.Round(v)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// String renders a compact description, with small tensors printed fully.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor(%s, %v)", t.dtype, t.shape)
	if t.NumElems() <= 16 && t.dtype != Complex64 {
		b.WriteString(" [")
		it := NewIter(t.shape)
		first := true
		for it.Next() {
			if !first {
				b.WriteString(" ")
			}
			first = false
			fmt.Fprintf(&b, "%g", t.At(it.Index()...))
		}
		b.WriteString("]")
	}
	return b.String()
}
