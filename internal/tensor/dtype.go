package tensor

import "fmt"

// DType identifies the element type of a tensor.
type DType int

// Supported element types. The set covers what the five benchmark
// pipelines exchange: raw bytes (video, ciphertext), quantized integers
// (DNN inputs), floats (FFT, SVM, RL), and complex FFT outputs.
const (
	Uint8 DType = iota
	Int8
	Int16
	Int32
	Int64
	Float32
	Float64
	Complex64
)

var dtypeNames = [...]string{
	Uint8:     "uint8",
	Int8:      "int8",
	Int16:     "int16",
	Int32:     "int32",
	Int64:     "int64",
	Float32:   "float32",
	Float64:   "float64",
	Complex64: "complex64",
}

var dtypeSizes = [...]int{
	Uint8:     1,
	Int8:      1,
	Int16:     2,
	Int32:     4,
	Int64:     8,
	Float32:   4,
	Float64:   8,
	Complex64: 8,
}

// String returns the dtype's conventional name.
func (d DType) String() string {
	if int(d) < len(dtypeNames) {
		return dtypeNames[d]
	}
	return fmt.Sprintf("DType(%d)", int(d))
}

// Size reports the element size in bytes.
func (d DType) Size() int {
	if int(d) >= len(dtypeSizes) {
		panic(fmt.Sprintf("tensor: unknown dtype %d", int(d)))
	}
	return dtypeSizes[d]
}

// IsComplex reports whether the dtype holds complex values.
func (d DType) IsComplex() bool { return d == Complex64 }

// IsFloat reports whether the dtype holds floating-point values.
func (d DType) IsFloat() bool { return d == Float32 || d == Float64 }

// IsInteger reports whether the dtype holds integer values.
func (d DType) IsInteger() bool {
	switch d {
	case Uint8, Int8, Int16, Int32, Int64:
		return true
	}
	return false
}
