package tensor

import "fmt"

// Reshape returns a view with a new shape covering the same elements in
// row-major order. The tensor must be contiguous (reshaping a strided
// view would require a copy; do that explicitly via Contiguous).
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != t.NumElems() {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)",
			t.shape, t.NumElems(), shape, n))
	}
	if !t.IsContiguous() {
		panic("tensor: Reshape on non-contiguous view; call Contiguous first")
	}
	return &Tensor{
		dtype:  t.dtype,
		shape:  append([]int(nil), shape...),
		stride: rowMajorStrides(shape),
		data:   t.data,
		offset: t.offset,
	}
}

// Transpose returns a view with dimensions permuted by perm, without
// moving any data. perm must be a permutation of 0..rank-1.
func (t *Tensor) Transpose(perm ...int) *Tensor {
	if len(perm) != len(t.shape) {
		panic(fmt.Sprintf("tensor: permutation %v does not match rank %d", perm, len(t.shape)))
	}
	seen := make([]bool, len(perm))
	shape := make([]int, len(perm))
	stride := make([]int, len(perm))
	for i, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			panic(fmt.Sprintf("tensor: invalid permutation %v", perm))
		}
		seen[p] = true
		shape[i] = t.shape[p]
		stride[i] = t.stride[p]
	}
	return &Tensor{dtype: t.dtype, shape: shape, stride: stride, data: t.data, offset: t.offset}
}

// Slice returns a view restricted to [lo, hi) along dimension dim.
func (t *Tensor) Slice(dim, lo, hi int) *Tensor {
	if dim < 0 || dim >= len(t.shape) {
		panic(fmt.Sprintf("tensor: slice dim %d out of range for rank %d", dim, len(t.shape)))
	}
	if lo < 0 || hi > t.shape[dim] || lo > hi {
		panic(fmt.Sprintf("tensor: slice [%d,%d) out of range for dim of length %d", lo, hi, t.shape[dim]))
	}
	shape := append([]int(nil), t.shape...)
	shape[dim] = hi - lo
	return &Tensor{
		dtype:  t.dtype,
		shape:  shape,
		stride: append([]int(nil), t.stride...),
		data:   t.data,
		offset: t.offset + lo*t.stride[dim],
	}
}

// Contiguous materializes the tensor into fresh row-major storage. A
// tensor that is already contiguous is returned unchanged.
func (t *Tensor) Contiguous() *Tensor {
	if t.IsContiguous() {
		return t
	}
	out := New(t.dtype, t.shape...)
	it := NewIter(t.shape)
	if t.dtype == Complex64 {
		for it.Next() {
			out.SetComplex(t.AtComplex(it.Index()...), it.Index()...)
		}
		return out
	}
	for it.Next() {
		out.Set(t.At(it.Index()...), it.Index()...)
	}
	return out
}

// Clone deep-copies the tensor into fresh contiguous storage.
func (t *Tensor) Clone() *Tensor {
	out := t.Contiguous()
	if out == t { // Contiguous returned the receiver; force a copy
		out = New(t.dtype, t.shape...)
		copy(out.data, t.Bytes())
	}
	return out
}

// AsType converts the tensor to a new dtype, copying and value-converting
// every element (with integer saturation). Complex→real takes the real
// part, matching the DRX typecast unit.
func (t *Tensor) AsType(dtype DType) *Tensor {
	out := New(dtype, t.shape...)
	it := NewIter(t.shape)
	if dtype == Complex64 {
		for it.Next() {
			out.SetComplex(t.AtComplex(it.Index()...), it.Index()...)
		}
		return out
	}
	for it.Next() {
		out.Set(t.At(it.Index()...), it.Index()...)
	}
	return out
}

// Reinterpret views the tensor's raw bytes as a different dtype and
// shape without copying. The receiver must be contiguous and its byte
// size must match the target exactly — this is the host-side view of a
// device buffer whose logical type the kernel layout dictates.
func (t *Tensor) Reinterpret(dtype DType, shape ...int) *Tensor {
	n := checkShape(shape)
	if n*dtype.Size() != t.SizeBytes() {
		panic(fmt.Sprintf("tensor: cannot reinterpret %d bytes as %v%v (%d bytes)",
			t.SizeBytes(), dtype, shape, n*dtype.Size()))
	}
	return &Tensor{
		dtype:  dtype,
		shape:  append([]int(nil), shape...),
		stride: rowMajorStrides(shape),
		data:   t.Bytes(),
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	it := NewIter(t.shape)
	for it.Next() {
		t.Set(v, it.Index()...)
	}
}

// Equal reports whether two tensors have the same dtype, shape, and
// element values (bitwise for floats via their canonical encodings).
func Equal(a, b *Tensor) bool {
	if a.dtype != b.dtype || len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	it := NewIter(a.shape)
	for it.Next() {
		if a.AtComplex(it.Index()...) != b.AtComplex(it.Index()...) {
			return false
		}
	}
	return true
}

// AllClose reports whether two tensors match elementwise within tol
// (absolute). Shapes and dtypes may differ; values are compared as
// complex128.
func AllClose(a, b *Tensor, tol float64) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	it := NewIter(a.shape)
	for it.Next() {
		d := a.AtComplex(it.Index()...) - b.AtComplex(it.Index()...)
		if abs2(d) > tol*tol {
			return false
		}
	}
	return true
}

func abs2(c complex128) float64 { return real(c)*real(c) + imag(c)*imag(c) }
