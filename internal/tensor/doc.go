// Package tensor implements dense N-dimensional arrays with explicit
// dtypes, strides, and zero-copy views.
//
// Tensors are the currency of data restructuring in DMX: every
// accelerator in a chain produces and consumes tensors in its own layout
// and dtype, and the restructuring kernels that DRX executes are
// transformations between such tensors. The package deliberately mirrors
// the small feature set those kernels need — strided views, reshape,
// transpose, typecast, gather — rather than a general array-programming
// library.
package tensor
