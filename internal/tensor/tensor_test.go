package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(Float32, 2, 3)
	if x.NumElems() != 6 || x.SizeBytes() != 24 {
		t.Fatalf("NumElems=%d SizeBytes=%d", x.NumElems(), x.SizeBytes())
	}
	it := NewIter(x.Shape())
	for it.Next() {
		if x.At(it.Index()...) != 0 {
			t.Fatal("new tensor not zero-filled")
		}
	}
}

func TestSetAtRoundTripAllDTypes(t *testing.T) {
	for _, d := range []DType{Uint8, Int8, Int16, Int32, Int64, Float32, Float64} {
		x := New(d, 4)
		x.Set(42, 2)
		if got := x.At(2); got != 42 {
			t.Errorf("%v: At = %v, want 42", d, got)
		}
		if got := x.At(1); got != 0 {
			t.Errorf("%v: neighbor disturbed: %v", d, got)
		}
	}
}

func TestIntegerSaturation(t *testing.T) {
	cases := []struct {
		d        DType
		in, want float64
	}{
		{Uint8, 300, 255},
		{Uint8, -5, 0},
		{Int8, 200, 127},
		{Int8, -200, -128},
		{Int16, 1e6, 32767},
		{Int32, 1e12, math.MaxInt32},
	}
	for _, c := range cases {
		x := New(c.d, 1)
		x.Set(c.in, 0)
		if got := x.At(0); got != c.want {
			t.Errorf("%v: Set(%v) read back %v, want %v", c.d, c.in, got, c.want)
		}
	}
}

func TestRoundingHalfAwayFromZero(t *testing.T) {
	x := New(Int8, 2)
	x.Set(2.5, 0)
	x.Set(-2.5, 1)
	if x.At(0) != 3 || x.At(1) != -3 {
		t.Errorf("rounding: got %v, %v; want 3, -3", x.At(0), x.At(1))
	}
}

func TestComplexRoundTrip(t *testing.T) {
	x := New(Complex64, 2, 2)
	x.SetComplex(3+4i, 1, 0)
	if got := x.AtComplex(1, 0); got != 3+4i {
		t.Errorf("AtComplex = %v, want (3+4i)", got)
	}
	// At() on complex returns the real part.
	if got := x.At(1, 0); got != 3 {
		t.Errorf("At on complex = %v, want 3", got)
	}
}

func TestFromBytesNoCopy(t *testing.T) {
	raw := []byte{1, 2, 3, 4, 5, 6}
	x := FromBytes(raw, 2, 3)
	raw[0] = 99
	if x.At(0, 0) != 99 {
		t.Error("FromBytes copied the data")
	}
	if x.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v, want 6", x.At(1, 2))
	}
}

func TestTransposeIsView(t *testing.T) {
	x := FromFloat32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Transpose(1, 0)
	if y.Dim(0) != 3 || y.Dim(1) != 2 {
		t.Fatalf("transposed shape %v", y.Shape())
	}
	if y.At(2, 1) != 6 || y.At(0, 1) != 4 {
		t.Errorf("transposed values wrong: %v %v", y.At(2, 1), y.At(0, 1))
	}
	// Mutating the view mutates the base.
	y.Set(42, 1, 0)
	if x.At(0, 1) != 42 {
		t.Error("transpose is not a view")
	}
	if y.IsContiguous() {
		t.Error("transposed 2x3 should not be contiguous")
	}
}

func TestContiguousMaterializesView(t *testing.T) {
	x := FromFloat32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Transpose(1, 0).Contiguous()
	if !y.IsContiguous() {
		t.Fatal("Contiguous returned non-contiguous tensor")
	}
	want := []float64{1, 4, 2, 5, 3, 6}
	for i, w := range want {
		if got := y.At(i/2, i%2); got != w {
			t.Errorf("elem %d = %v, want %v", i, got, w)
		}
	}
	// Now independent of the base.
	y.Set(-1, 0, 0)
	if x.At(0, 0) == -1 {
		t.Error("Contiguous aliased the base")
	}
}

func TestReshape(t *testing.T) {
	x := FromFloat32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	if y.At(2, 1) != 6 {
		t.Errorf("reshaped At(2,1) = %v, want 6", y.At(2, 1))
	}
	y.Set(9, 0, 0)
	if x.At(0, 0) != 9 {
		t.Error("reshape is not a view")
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(Float32, 2, 3).Reshape(4)
}

func TestSlice(t *testing.T) {
	x := FromFloat32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Slice(1, 1, 3)
	if y.Dim(1) != 2 {
		t.Fatalf("sliced shape %v", y.Shape())
	}
	if y.At(0, 0) != 2 || y.At(1, 1) != 6 {
		t.Errorf("sliced values %v %v", y.At(0, 0), y.At(1, 1))
	}
	y.Set(0, 0, 0)
	if x.At(0, 1) != 0 {
		t.Error("slice is not a view")
	}
}

func TestAsType(t *testing.T) {
	x := FromFloat32([]float32{1.4, 2.6, -3.5, 300}, 4)
	y := x.AsType(Int8)
	want := []float64{1, 3, -4, 127}
	for i, w := range want {
		if got := y.At(i); got != w {
			t.Errorf("AsType elem %d = %v, want %v", i, got, w)
		}
	}
}

func TestEqualAndAllClose(t *testing.T) {
	a := FromFloat32([]float32{1, 2, 3}, 3)
	b := FromFloat32([]float32{1, 2, 3}, 3)
	c := FromFloat32([]float32{1, 2, 3.001}, 3)
	if !Equal(a, b) {
		t.Error("Equal(a,b) = false")
	}
	if Equal(a, c) {
		t.Error("Equal(a,c) = true")
	}
	if !AllClose(a, c, 0.01) {
		t.Error("AllClose(a,c,0.01) = false")
	}
	if AllClose(a, c, 1e-6) {
		t.Error("AllClose(a,c,1e-6) = true")
	}
}

func TestIterCoversShape(t *testing.T) {
	it := NewIter([]int{2, 3, 2})
	n := 0
	for it.Next() {
		n++
	}
	if n != 12 {
		t.Errorf("iterated %d indices, want 12", n)
	}
	it.Reset()
	if !it.Next() {
		t.Fatal("Reset did not rewind")
	}
	for _, v := range it.Index() {
		if v != 0 {
			t.Errorf("first index after reset %v", it.Index())
		}
	}
}

func TestIterScalarAndEmpty(t *testing.T) {
	it := NewIter(nil)
	if !it.Next() {
		t.Error("scalar iter should yield one index")
	}
	if it.Next() {
		t.Error("scalar iter yielded two indices")
	}
	empty := NewIter([]int{3, 0, 2})
	if empty.Next() {
		t.Error("empty shape yielded an index")
	}
}

// Property: transpose twice with the inverse permutation is identity.
func TestTransposeInvolutionProperty(t *testing.T) {
	prop := func(vals [6]float32) bool {
		s := vals[:]
		x := FromFloat32(s, 2, 3)
		y := x.Transpose(1, 0).Transpose(1, 0)
		return Equal(x, y.Contiguous()) || Equal(x, y)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: Contiguous preserves all element values for any permutation of
// a rank-3 tensor.
func TestContiguousPreservesValuesProperty(t *testing.T) {
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	prop := func(raw [24]float32, pi uint8) bool {
		x := FromFloat32(raw[:], 2, 3, 4)
		perm := perms[int(pi)%len(perms)]
		y := x.Transpose(perm...)
		z := y.Contiguous()
		it := NewIter(y.Shape())
		for it.Next() {
			if y.At(it.Index()...) != z.At(it.Index()...) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: AsType to Float64 and back to Float32 is lossless for float32
// values.
func TestTypecastRoundTripProperty(t *testing.T) {
	prop := func(vals [8]float32) bool {
		for i, v := range vals {
			if math.IsNaN(float64(v)) {
				vals[i] = 0
			}
		}
		x := FromFloat32(vals[:], 8)
		y := x.AsType(Float64).AsType(Float32)
		return Equal(x, y)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStringSmall(t *testing.T) {
	x := FromFloat32([]float32{1, 2}, 2)
	got := x.String()
	want := "Tensor(float32, [2]) [1 2]"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
