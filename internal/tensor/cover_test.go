package tensor

import "testing"

func TestDTypePredicates(t *testing.T) {
	if !Complex64.IsComplex() || Float32.IsComplex() {
		t.Error("IsComplex wrong")
	}
	if !Float32.IsFloat() || !Float64.IsFloat() || Int8.IsFloat() {
		t.Error("IsFloat wrong")
	}
	for _, d := range []DType{Uint8, Int8, Int16, Int32, Int64} {
		if !d.IsInteger() {
			t.Errorf("%v should be integer", d)
		}
	}
	if Float32.IsInteger() || Complex64.IsInteger() {
		t.Error("IsInteger wrong")
	}
	if DType(99).String() == "" {
		t.Error("unknown dtype String empty")
	}
}

func TestDTypeSizePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for unknown dtype size")
		}
	}()
	DType(99).Size()
}

func TestCloneIndependence(t *testing.T) {
	// Clone of a contiguous tensor must still copy.
	x := FromFloat32([]float32{1, 2, 3, 4}, 4)
	y := x.Clone()
	y.Set(9, 0)
	if x.At(0) == 9 {
		t.Error("Clone aliased contiguous tensor")
	}
	// Clone of a view materializes it.
	v := FromFloat32([]float32{1, 2, 3, 4}, 2, 2).Transpose(1, 0)
	c := v.Clone()
	if !c.IsContiguous() || c.At(1, 0) != 2 {
		t.Error("Clone of view wrong")
	}
}

func TestReinterpret(t *testing.T) {
	x := FromBytes([]byte{1, 0, 0, 0, 2, 0, 0, 0}, 8)
	y := x.Reinterpret(Int32, 2)
	if y.At(0) != 1 || y.At(1) != 2 {
		t.Errorf("reinterpret values %v %v", y.At(0), y.At(1))
	}
	defer func() {
		if recover() == nil {
			t.Error("size-mismatched reinterpret accepted")
		}
	}()
	x.Reinterpret(Int32, 3)
}

func TestFillAndGetters(t *testing.T) {
	x := New(Float64, 2, 3)
	x.Fill(7)
	it := NewIter(x.Shape())
	for it.Next() {
		if x.At(it.Index()...) != 7 {
			t.Fatal("Fill incomplete")
		}
	}
	if x.Rank() != 2 || x.DType() != Float64 {
		t.Error("getters wrong")
	}
	st := x.Strides()
	if st[0] != 3 || st[1] != 1 {
		t.Errorf("strides %v", st)
	}
}

func TestFromFloat64AndFromInt32(t *testing.T) {
	f := FromFloat64([]float64{1.5, -2.5}, 2)
	if f.At(0) != 1.5 || f.At(1) != -2.5 {
		t.Error("FromFloat64 wrong")
	}
	i := FromInt32([]int32{-7, 9}, 2)
	if i.At(0) != -7 || i.At(1) != 9 {
		t.Error("FromInt32 wrong")
	}
}

func TestBytesPanicsOnView(t *testing.T) {
	v := FromFloat32([]float32{1, 2, 3, 4}, 2, 2).Transpose(1, 0)
	defer func() {
		if recover() == nil {
			t.Error("Bytes on view did not panic")
		}
	}()
	v.Bytes()
}

func TestConstructorSizeMismatchesPanic(t *testing.T) {
	cases := []func(){
		func() { FromFloat32([]float32{1}, 2) },
		func() { FromFloat64([]float64{1}, 2) },
		func() { FromInt32([]int32{1}, 2) },
		func() { FromBytes([]byte{1}, 2) },
		func() { New(Float32, -1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestTransposeInvalidPermPanics(t *testing.T) {
	x := New(Float32, 2, 3)
	for i, perm := range [][]int{{0}, {0, 0}, {0, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("perm case %d did not panic", i)
				}
			}()
			x.Transpose(perm...)
		}()
	}
}

func TestSliceBoundsPanic(t *testing.T) {
	x := New(Float32, 2, 3)
	for i, f := range []func(){
		func() { x.Slice(5, 0, 1) },
		func() { x.Slice(1, 2, 1) },
		func() { x.Slice(1, 0, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("slice case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAtIndexValidation(t *testing.T) {
	x := New(Float32, 2, 3)
	for i, f := range []func(){
		func() { x.At(0) },               // wrong rank
		func() { x.At(2, 0) },            // out of range
		func() { x.At(0, -1) },           // negative
		func() { x.SetComplex(1, 0, 0) }, // non-complex
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAllCloseShapeMismatch(t *testing.T) {
	a := New(Float32, 2)
	b := New(Float32, 3)
	c := New(Float32, 2, 1)
	if AllClose(a, b, 1) || AllClose(a, c, 1) {
		t.Error("AllClose accepted mismatched shapes")
	}
	if Equal(a, c) {
		t.Error("Equal accepted mismatched ranks")
	}
}
