package main

import "dmx/internal/experiments"

// registry enumerates every regenerable table and figure in evaluation
// order. Wrappers adapt the typed results to the renderer interface.
func registry() []experiment {
	return []experiment{
		{"table1", "benchmark inventory (Table I)", func() (renderer, error) {
			return experiments.Table1()
		}},
		{"fig3", "motivation: All-CPU vs Multi-Axl breakdown and speedup gap", func() (renderer, error) {
			return experiments.Fig3()
		}},
		{"fig5", "top-down characterization of restructuring on the CPU", func() (renderer, error) {
			return experiments.Fig5()
		}},
		{"fig11", "DMX latency speedup over Multi-Axl", func() (renderer, error) {
			return experiments.Fig11()
		}},
		{"fig12", "runtime breakdown, Multi-Axl vs DMX", func() (renderer, error) {
			return experiments.Fig12()
		}},
		{"fig13", "DMX throughput improvement", func() (renderer, error) {
			return experiments.Fig13()
		}},
		{"fig14", "DRX placement latency study", func() (renderer, error) {
			return experiments.Fig14()
		}},
		{"fig15", "DRX placement energy study", func() (renderer, error) {
			return experiments.Fig15()
		}},
		{"fig16", "three-kernel PIR+NER scalability", func() (renderer, error) {
			return experiments.Fig16()
		}},
		{"fig17", "broadcast / all-reduce collectives", func() (renderer, error) {
			return experiments.Fig17()
		}},
		{"fig18", "DRX RE-lane sensitivity", func() (renderer, error) {
			return experiments.Fig18()
		}},
		{"fig19", "PCIe generation sensitivity", func() (renderer, error) {
			return experiments.Fig19()
		}},
		{"load", "serving: latency vs offered load with saturation check", func() (renderer, error) {
			return experiments.Load()
		}},
		{"batching", "serving: continuous-batching window vs throughput/p99 tradeoff", func() (renderer, error) {
			return experiments.Batching()
		}},
		{"faults", "serving: availability vs fault rate under graceful degradation", func() (renderer, error) {
			return experiments.Faults()
		}},
		{"cluster", "serving: fleet scaling — throughput vs host count", func() (renderer, error) {
			return experiments.Cluster()
		}},
		{"tune", "serving: placement/fusion autotuner over the cost model (accepts -spec)", runTune},
	}
}
