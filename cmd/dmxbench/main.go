// Command dmxbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dmxbench                 # run every experiment
//	dmxbench -exp fig11      # run one (table1, fig3, fig5, fig11..fig19)
//	dmxbench -list           # list experiment ids
//
// Output is the text rendering of each experiment — the same rows and
// series the paper reports, regenerated from the simulation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

// renderer is any experiment result.
type renderer interface{ Render() string }

// experiment couples an id to its generator.
type experiment struct {
	id   string
	what string
	run  func() (renderer, error)
}

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	quiet := flag.Bool("q", false, "suppress progress timing on stderr")
	flag.Parse()

	exps := registry()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.id, e.what)
		}
		return
	}
	var failed bool
	for _, e := range exps {
		if *exp != "" && !strings.EqualFold(*exp, e.id) {
			continue
		}
		start := time.Now()
		res, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmxbench: %s: %v\n", e.id, err)
			failed = true
			continue
		}
		fmt.Println(res.Render())
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%s regenerated in %v]\n\n", e.id, time.Since(start).Round(time.Millisecond))
		}
	}
	if failed {
		os.Exit(1)
	}
}
