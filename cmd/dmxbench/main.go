// Command dmxbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dmxbench                 # run every experiment
//	dmxbench -exp fig11      # run one (table1, fig3, fig5, fig11..fig19)
//	dmxbench -list           # list experiment ids
//	dmxbench -j 4            # cap the sweep worker pool at 4
//	dmxbench -exp cluster -shards 8   # shard each fleet across event lanes
//	dmxbench -exp tune               # autotune the stock serving scenario
//	dmxbench -exp tune -spec my.json # autotune a custom experiment Spec
//
// Output is the text rendering of each experiment — the same rows and
// series the paper reports, regenerated from the simulation. Experiments
// run concurrently on the sweep worker pool (all cores by default; -j
// overrides), but results are always printed in registry order and each
// rendering is bit-for-bit identical to a sequential run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dmx/internal/experiments"
	"dmx/internal/sweep"
)

// renderer is any experiment result.
type renderer interface{ Render() string }

// experiment couples an id to its generator.
type experiment struct {
	id   string
	what string
	run  func() (renderer, error)
}

func main() { os.Exit(run()) }

// run holds main's body so deferred profile writers flush before exit.
func run() int {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	quiet := flag.Bool("q", false, "suppress progress timing on stderr")
	jobs := flag.Int("j", 0, "parallel sweep workers (default: all cores)")
	shards := flag.Int("shards", 1, "event lanes per cluster-experiment fleet (output is byte-identical at any value)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	spec := flag.String("spec", "", "experiment Spec (JSON) to tune instead of the stock scenario (only with -exp tune)")
	flag.Parse()

	if *spec != "" && !strings.EqualFold(*exp, "tune") {
		fmt.Fprintf(os.Stderr, "dmxbench: -spec is only meaningful with -exp tune (got -exp %q)\n", *exp)
		return 1
	}
	tuneSpecPath = *spec

	sweep.SetWorkers(*jobs)
	experiments.SetClusterShards(*shards)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmxbench: cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dmxbench: cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dmxbench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "dmxbench: memprofile: %v\n", err)
			}
		}()
	}

	exps := registry()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.id, e.what)
		}
		return 0
	}

	selected := exps
	if *exp != "" {
		selected = nil
		for _, e := range exps {
			if strings.EqualFold(*exp, e.id) {
				selected = append(selected, e)
			}
		}
		if len(selected) == 0 {
			fmt.Fprintf(os.Stderr, "dmxbench: unknown experiment %q; valid ids:\n", *exp)
			for _, e := range exps {
				fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.id, e.what)
			}
			return 1
		}
	}

	// Front-load the shared caches (benchmark corpora, DRX kernel
	// timings) so concurrent experiments don't race to duplicate that
	// work. Only worth it when more than one experiment runs.
	if len(selected) > 1 {
		start := time.Now()
		if err := experiments.Warm(); err != nil {
			fmt.Fprintf(os.Stderr, "dmxbench: warm: %v\n", err)
			return 1
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[caches warmed in %v]\n\n", time.Since(start).Round(time.Millisecond))
		}
	}

	// Run experiments on the worker pool, but stream results to stdout
	// strictly in registry order: slot i's rendering is delivered on its
	// own channel and printed only once slots 0..i-1 are out.
	type outcome struct {
		text string
		err  error
		took time.Duration
	}
	results := make([]chan outcome, len(selected))
	for i := range results {
		results[i] = make(chan outcome, 1)
	}
	go func() {
		_ = sweep.Each(len(selected), func(i int) error {
			start := time.Now()
			res, err := selected[i].run()
			o := outcome{err: err, took: time.Since(start)}
			if err == nil {
				o.text = res.Render()
			}
			results[i] <- o
			return nil
		})
	}()

	var failed bool
	for i, e := range selected {
		o := <-results[i]
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "dmxbench: %s: %v\n", e.id, o.err)
			failed = true
			continue
		}
		fmt.Println(o.text)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%s regenerated in %v]\n\n", e.id, o.took.Round(time.Millisecond))
		}
	}
	if failed {
		return 1
	}
	return 0
}
