package main

import (
	"fmt"
	"os"
	"strings"

	"dmx"
)

// tuneSpecPath is the -spec override for the tune experiment (empty =
// the stock scenario). Set once in main before the registry runs.
var tuneSpecPath string

// defaultTuneBase is the stock tuning scenario: a two-app test-scale
// mix driven well past single-host capacity under a tight SLO, so the
// tuned configuration must combine placement, admission, and
// scheduling moves rather than win on any one knob.
func defaultTuneBase() dmx.Spec {
	return dmx.Spec{
		Apps:     []string{"personal-info-redaction", "sound-detection"},
		Scale:    "test",
		Arrival:  "poisson",
		Rate:     150000,
		Requests: 32,
		Seed:     11,
		SLO:      "100us",
	}
}

// tuneReport couples the search result with the winner-replay check so
// the rendering itself certifies the replay contract.
type tuneReport struct {
	res           dmx.TuneResult
	winnerJSON    string
	replayGoodput float64
	replayP99     dmx.Duration
}

func (r tuneReport) Render() string {
	var b strings.Builder
	b.WriteString("== tune: placement/fusion autotuner over the serving cost model ==\n")
	b.WriteString(r.res.String())
	exact := r.replayGoodput == r.res.Goodput && r.replayP99 == r.res.P99
	fmt.Fprintf(&b, "replay: goodput %.1f req/s p99 %v (exact match: %v)\n",
		r.replayGoodput, r.replayP99, exact)
	b.WriteString("winner spec:\n")
	b.WriteString(r.winnerJSON)
	return strings.TrimRight(b.String(), "\n")
}

// runTune executes the autotuner and replays the winner document, so
// the rendered report carries both the ranking and the proof that the
// emitted Spec reproduces the tuned numbers.
func runTune() (renderer, error) {
	ts := dmx.TuneSpec{
		Base:       defaultTuneBase(),
		Placements: []string{"multiaxl", "integrated", "standalone", "pcie", "bump"},
		MaxRounds:  3,
	}
	if tuneSpecPath != "" {
		doc, err := os.ReadFile(tuneSpecPath)
		if err != nil {
			return nil, fmt.Errorf("-spec: %w", err)
		}
		base, err := dmx.UnmarshalSpec(doc)
		if err != nil {
			return nil, fmt.Errorf("-spec: %w", err)
		}
		ts.Base = base
	}
	res, err := dmx.Tune(ts)
	if err != nil {
		return nil, err
	}
	rep, err := res.Winner.Simulate()
	if err != nil {
		return nil, fmt.Errorf("replaying winner: %w", err)
	}
	completed, missed := 0, 0
	var p99 dmx.Duration
	for _, a := range rep.PerApp {
		completed += a.Completed
		missed += a.Missed
		if a.P99 > p99 {
			p99 = a.P99
		}
	}
	var goodput float64
	if sec := rep.Makespan.Seconds(); sec > 0 {
		goodput = float64(completed-missed) / sec
	}
	doc, err := dmx.MarshalSpec(res.Winner)
	if err != nil {
		return nil, err
	}
	return tuneReport{res: res, winnerJSON: string(doc), replayGoodput: goodput, replayP99: p99}, nil
}
