// Command drxasm is the DRX toolchain driver: assemble, disassemble,
// compile, and execute restructuring programs on the simulated machine.
//
//	drxasm asm  prog.s  prog.drx     # assemble text → binary
//	drxasm dis  prog.drx             # disassemble binary → text
//	drxasm compile mel 64 128 32     # compile a library kernel, print asm
//	drxasm time    mel 2048 512 40   # compile + simulate, print cycles
//
// Library kernels and their size arguments:
//
//	mel    <frames> <bins> <mels>
//	video  <pixels>
//	signal <batch> <bins>
//	record <nrec> <reclen>
//	column <nrows> <keyDigits> <amtDigits> <payBytes>
//	ner    <nrec> <reclen> <seqlen>
//	sum    <k> <n>
package main

import (
	"fmt"
	"os"
	"strconv"

	"dmx/internal/drx"
	"dmx/internal/drxc"
	"dmx/internal/isa"
	"dmx/internal/restructure"
	"dmx/internal/tensor"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "asm":
		err = assemble(os.Args[2:])
	case "dis":
		err = disassemble(os.Args[2:])
	case "compile":
		err = compile(os.Args[2:], false)
	case "time":
		err = compile(os.Args[2:], true)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "drxasm: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: drxasm asm <in.s> <out.drx> | dis <in.drx> | compile <kernel> <dims...> | time <kernel> <dims...>")
	os.Exit(2)
}

func assemble(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("asm wants <in.s> <out.drx>")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	prog, err := isa.Assemble(string(src))
	if err != nil {
		return err
	}
	bin, err := isa.Encode(prog)
	if err != nil {
		return err
	}
	if err := os.WriteFile(args[1], bin, 0o644); err != nil {
		return err
	}
	fmt.Printf("assembled %s: %d instructions, %d bytes\n", prog.Name, len(prog.Instrs), len(bin))
	return nil
}

func disassemble(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("dis wants <in.drx>")
	}
	bin, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	prog, err := isa.Decode(bin)
	if err != nil {
		return err
	}
	fmt.Print(prog.Disassemble())
	return nil
}

// kernelFromArgs builds a library restructuring kernel from CLI sizes.
func kernelFromArgs(args []string) (*restructure.Kernel, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("missing kernel name")
	}
	dims := make([]int, len(args)-1)
	for i, a := range args[1:] {
		v, err := strconv.Atoi(a)
		if err != nil {
			return nil, fmt.Errorf("dimension %q: %w", a, err)
		}
		dims[i] = v
	}
	need := func(n int) error {
		if len(dims) != n {
			return fmt.Errorf("kernel %q wants %d dimensions, got %d", args[0], n, len(dims))
		}
		return nil
	}
	switch args[0] {
	case "mel":
		if err := need(3); err != nil {
			return nil, err
		}
		return restructure.MelSpectrogram(dims[0], dims[1], dims[2]), nil
	case "video":
		if err := need(1); err != nil {
			return nil, err
		}
		return restructure.VideoPreprocess(dims[0]), nil
	case "signal":
		if err := need(2); err != nil {
			return nil, err
		}
		return restructure.SignalNormalize(dims[0], dims[1]), nil
	case "record":
		if err := need(2); err != nil {
			return nil, err
		}
		return restructure.RecordFrame(dims[0], dims[1]), nil
	case "column":
		if err := need(4); err != nil {
			return nil, err
		}
		return restructure.ColumnPack(dims[0], dims[1], dims[2], dims[3]), nil
	case "ner":
		if err := need(3); err != nil {
			return nil, err
		}
		return restructure.NERPrep(dims[0], dims[1], dims[2]), nil
	case "sum":
		if err := need(2); err != nil {
			return nil, err
		}
		return restructure.SumReduce(dims[0], dims[1]), nil
	}
	return nil, fmt.Errorf("unknown kernel %q", args[0])
}

func compile(args []string, simulate bool) error {
	k, err := kernelFromArgs(args)
	if err != nil {
		return err
	}
	cfg := drx.DefaultConfig()
	c, err := drxc.Compile(k, cfg)
	if err != nil {
		return err
	}
	if !simulate {
		fmt.Print(c.Prog.Disassemble())
		fmt.Printf("; DRAM layout (%d bytes total):\n", c.DRAMBytes)
		for _, p := range k.Params {
			fmt.Printf(";   %-10s %v %v @ %d\n", p.Name, p.DType, p.Shape, c.Layout[p.Name])
		}
		return nil
	}
	m, err := drx.New(cfg)
	if err != nil {
		return err
	}
	inputs := make(map[string]*tensor.Tensor)
	for _, p := range k.Inputs() {
		inputs[p.Name] = tensor.New(p.DType, p.Shape...)
	}
	_, res, err := drxc.Execute(c, m, inputs)
	if err != nil {
		return err
	}
	fmt.Printf("kernel %s on %d-lane DRX @ %.0f MHz:\n", k.Name, cfg.Lanes, cfg.ClockHz/1e6)
	fmt.Printf("  instructions executed: %d\n", res.Instrs)
	fmt.Printf("  compute cycles:        %d\n", res.ComputeCycles)
	fmt.Printf("  memory cycles:         %d\n", res.MemCycles)
	fmt.Printf("  control cycles:        %d\n", res.CtrlCycles)
	fmt.Printf("  total cycles:          %d (%.3f ms)\n", res.Cycles(), res.Seconds(cfg.ClockHz)*1e3)
	fmt.Printf("  DRAM traffic:          %d B loaded, %d B stored\n", res.BytesLoaded, res.BytesStored)
	return nil
}
