// Command dmxtrace validates a trace file produced by dmxsim
// -trace-out (or any obs.WriteTrace output): the JSON must parse as
// Chrome trace-event format, slices on each track must nest properly,
// and every flow arrow must have matched begin/end events. On success
// it prints a one-line summary; on failure it exits nonzero with the
// first violation. CI runs it against a freshly captured trace so the
// exported schema can never silently regress.
//
// Usage:
//
//	dmxtrace trace.json
package main

import (
	"fmt"
	"os"

	"dmx/internal/obs"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: dmxtrace <trace.json>")
		os.Exit(2)
	}
	path := os.Args[1]
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmxtrace: %v\n", err)
		os.Exit(1)
	}
	sum, err := obs.ValidateTrace(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmxtrace: %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("%s: valid trace: %d tracks, %d slices, %d instants, %d flows, %d counters\n",
		path, sum.Tracks, sum.Slices, sum.Instants, sum.Flows, sum.Counters)
}
