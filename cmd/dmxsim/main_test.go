package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dmx/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

func opts() options {
	return options{
		app:       "sound-detection",
		napps:     1,
		placement: "bump",
		gen:       3,
		lanes:     128,
		verbose:   true,
		trace:     true,
	}
}

// The full CLI output — event trace, report, per-app breakdown, energy
// line — must be byte-stable run over run. This pins the fix for the
// nondeterministic energy-breakdown ordering (map iteration) and the
// single-writer routing of the trace and the report.
func TestRunOutputIsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(opts(), &buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "sound_bump.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output differs from %s (run with -update to regenerate)\ngot:\n%s", golden, buf.String())
	}
}

func TestRunOutputIsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(opts(), &a); err != nil {
		t.Fatal(err)
	}
	if err := run(opts(), &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical runs produced different output")
	}
}

// Cluster-only flags on a single-host run must error out rather than
// silently shape (or not shape) the report.
func TestClusterOnlyFlagsRejected(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr bool
	}{
		{"net-lat-single-host", func(o *options) { o.netLat = "2us" }, true},
		{"net-core-single-host", func(o *options) { o.netCore = 50e9 }, true},
		{"net-nic-single-host", func(o *options) { o.netNIC = 12.5e9 }, true},
		{"shards-single-host", func(o *options) { o.shards = 4 }, true},
		{"negative-shards-single-host", func(o *options) { o.shards = -1 }, true},
		{"host-admit-single-host", func(o *options) { o.hostAdmit = 8 }, true},
		{"drain-single-host", func(o *options) { o.drain = "3/2ms" }, true},
		{"shards-default-ok", func(o *options) { o.shards = 1 }, false},
		{"net-multi-host-ok", func(o *options) {
			o.hosts = 2
			o.arrival = "poisson"
			o.router = "score"
			o.rate = 2000
			o.requests = 4
			o.netLat = "2us"
			o.shards = 3
			o.trace = false
			o.verbose = false
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := opts()
			tc.mutate(&o)
			var buf bytes.Buffer
			err := run(o, &buf)
			if tc.wantErr && err == nil {
				t.Error("cluster-only flag accepted on a single-host run")
			}
			if !tc.wantErr && err != nil {
				t.Errorf("valid flag combination rejected: %v", err)
			}
		})
	}
}

// The CLI's fleet output must be byte-identical at any -shards value:
// the flag buys wall-clock, never different physics.
func TestClusterShardsOutputIdentical(t *testing.T) {
	fleet := func(shards int) string {
		o := opts()
		o.trace = false
		o.verbose = false
		o.hosts = 4
		o.arrival = "poisson"
		o.router = "score"
		o.rate = 8000
		o.requests = 32
		o.seed = 9
		o.netNIC = 12.5e9
		o.netLat = "2us"
		o.shards = shards
		var buf bytes.Buffer
		if err := run(o, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq := fleet(1)
	for _, n := range []int{2, 4, 8} {
		if got := fleet(n); got != seq {
			t.Errorf("-shards %d output differs from sequential:\n%s\nvs:\n%s", n, got, seq)
		}
	}
}

// -trace-out must emit a file that the validator accepts and that is
// byte-identical across runs.
func TestTraceOutValidatesAndIsStable(t *testing.T) {
	dir := t.TempDir()
	capture := func(name string) []byte {
		o := opts()
		o.trace = false
		o.verbose = false
		o.stats = true
		o.traceOut = filepath.Join(dir, name)
		var buf bytes.Buffer
		if err := run(o, &buf); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(o.traceOut)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first := capture("a.json")
	if _, err := obs.ValidateTrace(first); err != nil {
		t.Fatalf("exported trace does not validate: %v", err)
	}
	if !bytes.Equal(first, capture("b.json")) {
		t.Error("trace bytes differ between identical runs")
	}
}
