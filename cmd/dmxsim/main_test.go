package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmx"
	"dmx/internal/dmxsys"
	"dmx/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

func opts() options {
	return options{
		app:       "sound-detection",
		napps:     1,
		placement: "bump",
		gen:       3,
		lanes:     128,
		verbose:   true,
		trace:     true,
	}
}

// The full CLI output — event trace, report, per-app breakdown, energy
// line — must be byte-stable run over run. This pins the fix for the
// nondeterministic energy-breakdown ordering (map iteration) and the
// single-writer routing of the trace and the report.
func TestRunOutputIsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(opts(), &buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "sound_bump.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output differs from %s (run with -update to regenerate)\ngot:\n%s", golden, buf.String())
	}
}

func TestRunOutputIsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(opts(), &a); err != nil {
		t.Fatal(err)
	}
	if err := run(opts(), &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical runs produced different output")
	}
}

// Cluster-only flags on a single-host run must error out rather than
// silently shape (or not shape) the report.
func TestClusterOnlyFlagsRejected(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr bool
	}{
		{"net-lat-single-host", func(o *options) { o.netLat = "2us" }, true},
		{"net-core-single-host", func(o *options) { o.netCore = 50e9 }, true},
		{"net-nic-single-host", func(o *options) { o.netNIC = 12.5e9 }, true},
		{"shards-single-host", func(o *options) { o.shards = 4 }, true},
		{"negative-shards-single-host", func(o *options) { o.shards = -1 }, true},
		{"host-admit-single-host", func(o *options) { o.hostAdmit = 8 }, true},
		{"drain-single-host", func(o *options) { o.drain = "3/2ms" }, true},
		{"shards-default-ok", func(o *options) { o.shards = 1 }, false},
		{"net-multi-host-ok", func(o *options) {
			o.hosts = 2
			o.arrival = "poisson"
			o.router = "score"
			o.rate = 2000
			o.requests = 4
			o.netLat = "2us"
			o.shards = 3
			o.trace = false
			o.verbose = false
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := opts()
			tc.mutate(&o)
			var buf bytes.Buffer
			err := run(o, &buf)
			if tc.wantErr && err == nil {
				t.Error("cluster-only flag accepted on a single-host run")
			}
			if !tc.wantErr && err != nil {
				t.Errorf("valid flag combination rejected: %v", err)
			}
		})
	}
}

// The CLI's fleet output must be byte-identical at any -shards value:
// the flag buys wall-clock, never different physics.
func TestClusterShardsOutputIdentical(t *testing.T) {
	fleet := func(shards int) string {
		o := opts()
		o.trace = false
		o.verbose = false
		o.hosts = 4
		o.arrival = "poisson"
		o.router = "score"
		o.rate = 8000
		o.requests = 32
		o.seed = 9
		o.netNIC = 12.5e9
		o.netLat = "2us"
		o.shards = shards
		var buf bytes.Buffer
		if err := run(o, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq := fleet(1)
	for _, n := range []int{2, 4, 8} {
		if got := fleet(n); got != seq {
			t.Errorf("-shards %d output differs from sequential:\n%s\nvs:\n%s", n, got, seq)
		}
	}
}

// -trace-out must emit a file that the validator accepts and that is
// byte-identical across runs.
func TestTraceOutValidatesAndIsStable(t *testing.T) {
	dir := t.TempDir()
	capture := func(name string) []byte {
		o := opts()
		o.trace = false
		o.verbose = false
		o.stats = true
		o.traceOut = filepath.Join(dir, name)
		var buf bytes.Buffer
		if err := run(o, &buf); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(o.traceOut)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first := capture("a.json")
	if _, err := obs.ValidateTrace(first); err != nil {
		t.Fatalf("exported trace does not validate: %v", err)
	}
	if !bytes.Equal(first, capture("b.json")) {
		t.Error("trace bytes differ between identical runs")
	}
}

// applySpec must treat the document as the new base: fields it sets
// override flag defaults, while explicitly given flags still win, and
// incoherent documents fail with a message naming the problem.
func TestApplySpecMerge(t *testing.T) {
	spec := dmx.Spec{
		Apps: []string{"personal-info-redaction"}, Scale: "test", Copies: 3,
		Placement: "integrated", Gen: 4, Lanes: 64, Discipline: "srs",
		BatchWindow: "200us", BatchMax: 8, Admit: 32,
		Faults: "transient=0.01", FaultSeed: 9, Retry: 2, Deadline: "500us",
		Arrival: "poisson", Rate: 2500, Requests: 48, Seed: 7, SLO: "30ms",
		Hosts: 2, Router: "least", HostAdmit: 16, NetNIC: 12.5e9, NetLat: "2us", Shards: 3,
	}
	cases := []struct {
		name     string
		spec     dmx.Spec
		explicit map[string]bool
		check    func(t *testing.T, o options)
		wantErr  string
	}{
		{"spec fields become base", spec, nil, func(t *testing.T, o options) {
			if o.app != "personal-info-redaction" || o.scale != "test" || o.napps != 3 {
				t.Errorf("workload: app=%q scale=%q napps=%d", o.app, o.scale, o.napps)
			}
			if o.placement != "integrated" || o.gen != 4 || o.lanes != 64 || o.discipline != "srs" {
				t.Errorf("host: %q gen=%d lanes=%d disc=%q", o.placement, o.gen, o.lanes, o.discipline)
			}
			if o.batchWindow != "200us" || o.batchMax != 8 || o.admit != 32 {
				t.Errorf("serving: window=%q max=%d admit=%d", o.batchWindow, o.batchMax, o.admit)
			}
			if o.faults != "transient=0.01" || o.faultSeed != 9 || o.retry != 2 || o.deadline != "500us" {
				t.Errorf("faults: %q seed=%d retry=%d deadline=%q", o.faults, o.faultSeed, o.retry, o.deadline)
			}
			if o.arrival != "poisson" || o.rate != 2500 || o.requests != 48 || o.seed != 7 || o.slo != "30ms" {
				t.Errorf("traffic: %q rate=%v req=%d seed=%d slo=%q", o.arrival, o.rate, o.requests, o.seed, o.slo)
			}
			if o.hosts != 2 || o.router != "least" || o.hostAdmit != 16 || o.netNIC != 12.5e9 || o.netLat != "2us" || o.shards != 3 {
				t.Errorf("cluster: hosts=%d router=%q hostAdmit=%d nic=%v lat=%q shards=%d",
					o.hosts, o.router, o.hostAdmit, o.netNIC, o.netLat, o.shards)
			}
		}, ""},
		{"explicit flags win", spec, map[string]bool{"placement": true, "rate": true, "requests": true},
			func(t *testing.T, o options) {
				if o.placement != "bump" || o.rate != 1000 || o.requests != 16 {
					t.Errorf("explicit flags overridden by spec: placement=%q rate=%v requests=%d",
						o.placement, o.rate, o.requests)
				}
				if o.discipline != "srs" {
					t.Errorf("non-explicit field not taken from spec: discipline=%q", o.discipline)
				}
			}, ""},
		{"sparse spec keeps defaults", dmx.Spec{Arrival: "open"}, nil, func(t *testing.T, o options) {
			if o.arrival != "open" {
				t.Errorf("arrival = %q", o.arrival)
			}
			if o.rate != 1000 || o.requests != 16 || o.placement != "bump" {
				t.Errorf("defaults lost: rate=%v requests=%d placement=%q", o.rate, o.requests, o.placement)
			}
		}, ""},
		{"fuse hops carried", dmx.Spec{Arrival: "poisson", FuseHops: []dmx.FusePair{{App: 0, Hop: 0}}}, nil,
			func(t *testing.T, o options) {
				if len(o.fuse) != 1 || o.fuse[0] != (dmxsys.FusePair{App: 0, Hop: 0}) {
					t.Errorf("fuse = %v", o.fuse)
				}
			}, ""},
		{"multi-app rejected", dmx.Spec{Apps: []string{"a", "b"}, Arrival: "poisson"}, nil, nil, "one benchmark"},
		{"bad scale rejected", dmx.Spec{Scale: "huge", Arrival: "poisson"}, nil, nil, "scale"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := options{app: "all", napps: 1, placement: "bump", gen: 3, lanes: 128,
				rate: 1000, requests: 16, seed: 1, discipline: "fifo", router: "score", hosts: 1, shards: 1}
			o, err := applySpec(tc.spec, base, tc.explicit)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %v, want mention of %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, o)
		})
	}
}

// A fused spec must drive the whole CLI path: the fuse pairs land in
// the config and the run completes.
func TestRunWithFusedSpec(t *testing.T) {
	o, err := applySpec(dmx.Spec{
		Apps: []string{"pir-ner"}, Scale: "test", Placement: "integrated",
		Arrival: "poisson", Rate: 2000, Requests: 8, Seed: 3,
		FuseHops: []dmx.FusePair{{App: 0, Hop: 0}},
	}, options{app: "all", napps: 1, placement: "bump", gen: 3, lanes: 128,
		rate: 1000, requests: 16, seed: 1, hosts: 1, shards: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pir-ner") {
		t.Errorf("report does not mention the app:\n%s", buf.String())
	}
	// The same spec with an illegal placement for fusion must surface
	// the validation error.
	o.placement = "bump"
	if err := run(o, &buf); err == nil || !strings.Contains(err.Error(), "shared DRX") {
		t.Errorf("fusion on bump: %v", err)
	}
}
