package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dmx/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

func opts() options {
	return options{
		app:       "sound-detection",
		napps:     1,
		placement: "bump",
		gen:       3,
		lanes:     128,
		verbose:   true,
		trace:     true,
	}
}

// The full CLI output — event trace, report, per-app breakdown, energy
// line — must be byte-stable run over run. This pins the fix for the
// nondeterministic energy-breakdown ordering (map iteration) and the
// single-writer routing of the trace and the report.
func TestRunOutputIsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(opts(), &buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "sound_bump.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output differs from %s (run with -update to regenerate)\ngot:\n%s", golden, buf.String())
	}
}

func TestRunOutputIsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(opts(), &a); err != nil {
		t.Fatal(err)
	}
	if err := run(opts(), &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical runs produced different output")
	}
}

// -trace-out must emit a file that the validator accepts and that is
// byte-identical across runs.
func TestTraceOutValidatesAndIsStable(t *testing.T) {
	dir := t.TempDir()
	capture := func(name string) []byte {
		o := opts()
		o.trace = false
		o.verbose = false
		o.stats = true
		o.traceOut = filepath.Join(dir, name)
		var buf bytes.Buffer
		if err := run(o, &buf); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(o.traceOut)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first := capture("a.json")
	if _, err := obs.ValidateTrace(first); err != nil {
		t.Fatalf("exported trace does not validate: %v", err)
	}
	if !bytes.Equal(first, capture("b.json")) {
		t.Error("trace bytes differ between identical runs")
	}
}
