// Command dmxsim runs a single system configuration and prints the
// latency/throughput/energy report: one benchmark (or the full suite),
// a concurrency level, a DRX placement, and fabric/DRX knobs.
//
// Examples:
//
//	dmxsim -app sound-detection -apps 4 -placement bump
//	dmxsim -app all -apps 15 -placement multiaxl -gen 4
//	dmxsim -app database-hash-join -placement bump -lanes 64 -v
//	dmxsim -app sound-detection -trace-out trace.json -stats
//	dmxsim -app sound-detection -apps 4 -arrival poisson -rate 2000 -requests 64 -seed 7
//
// -trace-out writes the structured trace as Chrome trace-event JSON;
// open it at ui.perfetto.dev. -stats prints per-device utilization and
// per-stage latency histograms aggregated from the same event stream.
//
// -arrival switches to load-generation mode: each application receives
// -requests requests under the chosen arrival process (closed-loop
// burst, open-loop fixed rate, or seeded Poisson at -rate req/s), and
// the report shows per-app offered vs achieved throughput and latency
// quantiles. -discipline selects how contended stations order waiting
// jobs (fifo, priority, wfq, edf, srs).
//
// The serving layer's SLO machinery hangs off four more flags:
// -batch-window enables continuous batching (arrivals of one app within
// the window coalesce into one pipeline walk; the report gains a
// batches line), -batch-max caps the batch size, -slo sets the
// per-request latency budget (the miss accounting in the report, and
// the deadlines EDF schedules by), and -admit bounds each app's
// outstanding requests with immediate rejection beyond the limit:
//
//	dmxsim -app sound-detection -apps 4 -arrival poisson -rate 4000 -requests 64 \
//	    -batch-window 200us -discipline edf -slo 30ms -admit 32
//
// -faults turns on seeded deterministic fault injection (DRX outages,
// transient restructure errors, PCIe link degradation/loss, accelerator
// stalls):
//
//	dmxsim -app sound-detection -arrival poisson -rate 2000 -requests 64 \
//	    -faults drx=5ms/200us,transient=0.01 -fault-seed 42
//
// Injection implies the default recovery policy (bounded retries with
// exponential backoff, graceful degradation of DRX-down hops to
// CPU-mediated restructuring); -retry caps the attempts and -deadline
// arms a per-stage watchdog. The same -faults spec and -fault-seed
// always reproduce the same report.
//
// -hosts N (with a load-mode -arrival) replicates the whole
// configuration N times into a fleet on one shared engine and routes
// the arrival process through the cluster router. -router picks the
// policy (score = placement-aware headroom, rr, least), -host-admit
// caps each host's outstanding requests, -drain N/window drains hosts
// whose fault incidents spike, and -net-core/-net-nic/-net-lat model
// the inter-host network:
//
//	dmxsim -app sound-detection -hosts 4 -arrival poisson -rate 8000 -requests 256 \
//	    -router score -host-admit 64 -net-nic 12.5e9 -net-lat 2us
//
// The report is the same LoadReport, rolled up across replicas, plus a
// "router:" line showing where requests landed. A fleet of one host is
// byte-identical to the single-host load run.
//
// -shards N runs the fleet conservatively in parallel: hosts spread
// across up to N event lanes that execute concurrently inside lookahead
// windows derived from -net-lat. Output is byte-identical at any shard
// count — the flag only buys wall-clock on multi-core machines, and a
// fleet without a network latency falls back to sequential execution.
// The cluster-only flags (-shards, -net-*, -host-admit, -drain) are
// rejected with -hosts 1 rather than silently ignored.
//
// -spec file.json loads a serialized experiment document (dmx.Spec —
// the format the autotuner emits as TuneResult.Winner) as the base
// configuration. Every field the document sets becomes the new default;
// flags given explicitly on the command line still override it:
//
//	dmxsim -spec tuned.json              # replay the document as-is
//	dmxsim -spec tuned.json -requests 64 # same experiment, longer run
//
// Unknown fields in the document are rejected, and spec-only fields
// with no flag equivalent (scale, fuse_hops) apply directly. A document
// selecting multiple apps is rejected — dmxsim runs one benchmark name
// or 'all'; replay multi-app specs with dmxbench -exp tune.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"dmx"
	"dmx/internal/cluster"
	"dmx/internal/dmxsys"
	"dmx/internal/faults"
	"dmx/internal/obs"
	"dmx/internal/pcie"
	"dmx/internal/sim"
	"dmx/internal/traffic"
	"dmx/internal/workload"
)

var placements = map[string]dmxsys.Placement{
	"allcpu":     dmxsys.AllCPU,
	"multiaxl":   dmxsys.MultiAxl,
	"integrated": dmxsys.Integrated,
	"standalone": dmxsys.Standalone,
	"pcie":       dmxsys.PCIeIntegrated,
	"bump":       dmxsys.BumpInTheWire,
}

// options collects every flag so that run is testable with a fixed
// configuration and an in-memory writer.
type options struct {
	app       string
	napps     int
	placement string
	gen       int
	lanes     int
	verbose   bool
	trace     bool
	stats     bool
	traceOut  string

	// Spec-only knobs: carried from a -spec document, no flag of their
	// own. scale selects workload geometry ("" = paper); fuse lists the
	// fused hop pairs.
	scale string
	fuse  []dmxsys.FusePair

	// Load-generation mode (empty arrival = classic one-shot run).
	arrival    string
	rate       float64
	requests   int
	seed       uint64
	discipline string

	// Serving SLO machinery (zero values = all disabled).
	batchWindow string
	batchMax    int
	admit       int
	slo         string

	// Fault injection and recovery (empty faults = none injected).
	faults    string
	faultSeed uint64
	retry     int
	deadline  string

	// Cluster mode (hosts > 1 replicates the config into a fleet).
	hosts     int
	router    string
	hostAdmit int
	drain     string
	netCore   float64
	netNIC    float64
	netLat    string
	shards    int
}

func main() {
	var o options
	flag.StringVar(&o.app, "app", "all", "benchmark name or 'all' (video-surveillance, sound-detection, brain-stimulation, personal-info-redaction, database-hash-join, pir-ner, genai-rag)")
	flag.IntVar(&o.napps, "apps", 1, "concurrent application instances")
	flag.StringVar(&o.placement, "placement", "bump", "allcpu | multiaxl | integrated | standalone | pcie | bump")
	flag.IntVar(&o.gen, "gen", 3, "PCIe generation (3, 4, 5)")
	flag.IntVar(&o.lanes, "lanes", 128, "DRX RE lanes (power of two)")
	flag.BoolVar(&o.verbose, "v", false, "print per-app breakdowns")
	flag.BoolVar(&o.trace, "trace", false, "print the Fig. 10 event trace")
	flag.BoolVar(&o.stats, "stats", false, "print device utilization and per-stage latency histograms")
	flag.StringVar(&o.traceOut, "trace-out", "", "write a Perfetto-loadable trace (Chrome trace-event JSON) to this file")
	flag.StringVar(&o.arrival, "arrival", "", "load-generation arrival process: closed | open | poisson (empty = one request per app)")
	flag.Float64Var(&o.rate, "rate", 1000, "offered request rate per app in req/s (open and poisson arrivals)")
	flag.IntVar(&o.requests, "requests", 16, "requests per app in load-generation mode")
	flag.Uint64Var(&o.seed, "seed", 1, "PRNG seed for poisson arrivals")
	flag.StringVar(&o.discipline, "discipline", "fifo", "service discipline at contended stations: fifo | priority | wfq | edf | srs")
	flag.StringVar(&o.batchWindow, "batch-window", "", "continuous-batching window, e.g. '200us' (empty = batching off)")
	flag.IntVar(&o.batchMax, "batch-max", 0, "max requests per batch; reaching it flushes the window early (0 = uncapped)")
	flag.IntVar(&o.admit, "admit", 0, "per-app admission limit on outstanding requests in load mode (0 = unlimited)")
	flag.StringVar(&o.slo, "slo", "", "per-request latency budget, e.g. '30ms' (deadline-miss accounting; the deadline EDF schedules by)")
	flag.StringVar(&o.faults, "faults", "", "fault-injection spec, e.g. 'drx=5ms/200us,transient=0.01,link=20ms/1ms/0.25,stall=10ms/500us'")
	flag.Uint64Var(&o.faultSeed, "fault-seed", 0, "override the fault plan's PRNG seed (0 keeps the spec's seed)")
	flag.IntVar(&o.retry, "retry", 0, "max attempts per stage under faults (0 = default policy of 3 when -faults is set)")
	flag.StringVar(&o.deadline, "deadline", "", "per-stage watchdog deadline, e.g. '500us' (empty = no watchdog)")
	flag.IntVar(&o.hosts, "hosts", 1, "fleet size: replicate the whole configuration onto N hosts behind the cluster router (needs -arrival)")
	flag.StringVar(&o.router, "router", "score", "cluster routing policy: score (placement-aware headroom) | rr | least")
	flag.IntVar(&o.hostAdmit, "host-admit", 0, "cluster-level cap on outstanding requests per host (0 = unlimited)")
	flag.StringVar(&o.drain, "drain", "", "fault-aware draining as 'N/window', e.g. '3/2ms': drain a host with ≥N incidents inside the trailing window ('3' alone = unbounded window)")
	flag.Float64Var(&o.netCore, "net-core", 0, "shared core network bandwidth in bytes/s per direction (0 = unmodeled)")
	flag.Float64Var(&o.netNIC, "net-nic", 0, "per-host NIC bandwidth in bytes/s per direction (0 = unmodeled)")
	flag.StringVar(&o.netLat, "net-lat", "", "one-way network propagation latency, e.g. '2us' (empty = none)")
	flag.IntVar(&o.shards, "shards", 1, "event lanes for conservative-parallel fleet execution (needs -net-lat; output is byte-identical at any value)")
	specPath := flag.String("spec", "", "load a JSON experiment Spec (dmx.Spec) as the base configuration; explicitly set flags override its fields")
	flag.Parse()

	if *specPath != "" {
		doc, err := os.ReadFile(*specPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmxsim: -spec: %v\n", err)
			os.Exit(1)
		}
		s, err := dmx.UnmarshalSpec(doc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmxsim: -spec: %v\n", err)
			os.Exit(1)
		}
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		o, err = applySpec(s, o, explicit)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmxsim: -spec: %v\n", err)
			os.Exit(1)
		}
	}

	// One buffered writer carries everything — the event trace, the
	// report, and the energy line — so output order is exactly emission
	// order regardless of how the pieces are produced.
	out := bufio.NewWriter(os.Stdout)
	err := run(o, out)
	if ferr := out.Flush(); err == nil {
		err = ferr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmxsim: %v\n", err)
		os.Exit(1)
	}
}

// applySpec merges a Spec document under the parsed flags: every spec
// field becomes the new base value unless the corresponding flag was
// given explicitly on the command line (explicit[name]), in which case
// the flag wins. Zero-valued spec fields leave the flag defaults alone,
// so a sparse document overrides only what it mentions.
func applySpec(s dmx.Spec, o options, explicit map[string]bool) (options, error) {
	if len(s.Apps) > 0 && !explicit["app"] {
		if len(s.Apps) > 1 {
			return o, fmt.Errorf("spec selects %d apps; dmxsim runs one benchmark (or 'all') — use dmxbench -exp tune for multi-app specs", len(s.Apps))
		}
		o.app = s.Apps[0]
	}
	if s.Scale != "" {
		switch s.Scale {
		case "paper", "test":
			o.scale = s.Scale
		default:
			return o, fmt.Errorf("spec scale %q (want \"paper\" or \"test\")", s.Scale)
		}
	}
	o.fuse = append([]dmxsys.FusePair(nil), s.FuseHops...)
	type merge struct {
		flag  string
		apply func()
		skip  bool
	}
	for _, m := range []merge{
		{"apps", func() { o.napps = s.Copies }, s.Copies == 0},
		{"placement", func() { o.placement = s.Placement }, s.Placement == ""},
		{"gen", func() { o.gen = s.Gen }, s.Gen == 0},
		{"lanes", func() { o.lanes = s.Lanes }, s.Lanes == 0},
		{"discipline", func() { o.discipline = s.Discipline }, s.Discipline == ""},
		{"batch-window", func() { o.batchWindow = s.BatchWindow }, s.BatchWindow == ""},
		{"batch-max", func() { o.batchMax = s.BatchMax }, s.BatchMax == 0},
		{"admit", func() { o.admit = s.Admit }, s.Admit == 0},
		{"faults", func() { o.faults = s.Faults }, s.Faults == ""},
		{"fault-seed", func() { o.faultSeed = s.FaultSeed }, s.FaultSeed == 0},
		{"retry", func() { o.retry = s.Retry }, s.Retry == 0},
		{"deadline", func() { o.deadline = s.Deadline }, s.Deadline == ""},
		{"arrival", func() { o.arrival = s.Arrival }, s.Arrival == ""},
		{"rate", func() { o.rate = s.Rate }, s.Rate == 0},
		{"requests", func() { o.requests = s.Requests }, s.Requests == 0},
		{"seed", func() { o.seed = s.Seed }, s.Seed == 0},
		{"slo", func() { o.slo = s.SLO }, s.SLO == ""},
		{"hosts", func() { o.hosts = s.Hosts }, s.Hosts == 0},
		{"router", func() { o.router = s.Router }, s.Router == ""},
		{"host-admit", func() { o.hostAdmit = s.HostAdmit }, s.HostAdmit == 0},
		{"net-core", func() { o.netCore = s.NetCore }, s.NetCore == 0},
		{"net-nic", func() { o.netNIC = s.NetNIC }, s.NetNIC == 0},
		{"net-lat", func() { o.netLat = s.NetLat }, s.NetLat == ""},
		{"shards", func() { o.shards = s.Shards }, s.Shards == 0},
	} {
		if m.skip || explicit[m.flag] {
			continue
		}
		m.apply()
	}
	return o, nil
}

func run(o options, out io.Writer) error {
	p, ok := placements[strings.ToLower(o.placement)]
	if !ok {
		return fmt.Errorf("unknown placement %q (want one of allcpu, multiaxl, integrated, standalone, pcie, bump)", o.placement)
	}
	if err := checkClusterFlags(o); err != nil {
		return err
	}
	cfg := dmxsys.DefaultConfig(p)
	switch o.gen {
	case 3:
		cfg.Gen = pcie.Gen3
	case 4:
		cfg.Gen = pcie.Gen4
	case 5:
		cfg.Gen = pcie.Gen5
	default:
		return fmt.Errorf("unsupported PCIe generation %d", o.gen)
	}
	cfg.DRX = cfg.DRX.WithLanes(o.lanes)
	if o.discipline != "" {
		sched, err := dmxsys.ParseSched(o.discipline)
		if err != nil {
			return err
		}
		cfg.Sched = sched
	}
	if err := applyFaults(o, &cfg); err != nil {
		return err
	}
	if o.batchWindow != "" {
		w, err := faults.ParseDuration(o.batchWindow)
		if err != nil {
			return fmt.Errorf("-batch-window: %w", err)
		}
		cfg.BatchWindow = w
	}
	cfg.BatchMax = o.batchMax
	cfg.AdmitLimit = o.admit
	if len(o.fuse) > 0 {
		cfg.FuseHops = append([]dmxsys.FusePair(nil), o.fuse...)
	}
	if o.trace {
		cfg.Trace = func(at sim.Time, app, event string) {
			fmt.Fprintf(out, "  [%12v] %-24s %s\n", at, app, event)
		}
	}
	if o.traceOut != "" || o.stats {
		cfg.Obs = obs.New()
	}

	scale := workload.PaperScale
	if o.scale == "test" {
		scale = workload.TestScale
	}
	benches, err := selectBenchmarks(o.app, scale)
	if err != nil {
		return err
	}
	pipes := make([]*dmxsys.Pipeline, 0, o.napps*len(benches))
	for i := 0; i < o.napps; i++ {
		for _, b := range benches {
			pipes = append(pipes, b.Pipeline)
		}
	}
	if cfg.Sched == dmxsys.SchedPriority {
		// Default priority order: app index (earlier instances first).
		cfg.AppPriority = make([]int, len(pipes))
		for i := range cfg.AppPriority {
			cfg.AppPriority[i] = i
		}
	}
	if o.hosts > 1 {
		if o.arrival == "" {
			return fmt.Errorf("-hosts %d needs a load run: set -arrival (closed | open | poisson)", o.hosts)
		}
		if o.trace {
			return fmt.Errorf("-trace is single-host only; use -trace-out or -stats on a fleet")
		}
		fmt.Fprintf(out, "simulating %d app instance(s) of %s under %v on %d hosts (PCIe %v, %d RE lanes)...\n",
			len(pipes), o.app, p, o.hosts, cfg.Gen, o.lanes)
		return runCluster(o, cfg, pipes, out)
	}
	fmt.Fprintf(out, "simulating %d app instance(s) of %s under %v (PCIe %v, %d RE lanes)...\n",
		len(pipes), o.app, p, cfg.Gen, o.lanes)
	sys, err := dmxsys.New(cfg, pipes)
	if err != nil {
		return err
	}
	if o.arrival != "" {
		return runLoad(o, cfg, sys, out)
	}
	rep, err := sys.Run()
	if err != nil {
		return err
	}
	fmt.Fprintln(out, rep)
	printFaultCounts(sys, cfg, out)
	if o.verbose {
		for _, a := range rep.Apps {
			thr := a.Throughput(2)
			fmt.Fprintf(out, "  %-26s total %-12v kernel %-12v restructure %-12v movement %-12v (%.1f req/s)\n",
				a.App, a.Total, a.KernelTime, a.RestructureTime, a.MovementTime, thr)
		}
	}
	fmt.Fprintf(out, "energy: %.2f J ", rep.EnergyJ)
	keys := make([]string, 0, len(rep.EnergyBreakdown))
	for k := range rep.EnergyBreakdown {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(out, "%s=%.2f ", k, rep.EnergyBreakdown[k])
	}
	fmt.Fprintln(out)
	if o.stats {
		fmt.Fprintln(out, rep.Metrics)
	}
	return writeTraceFile(o, cfg, out)
}

// checkClusterFlags rejects cluster-only flags on a single-host run.
// Silently ignoring -net-* (or -shards, -host-admit, -drain) would
// print a report for physics the user didn't ask about — a one-host
// "fleet" has no inter-host network to model.
func checkClusterFlags(o options) error {
	if o.hosts > 1 {
		return nil
	}
	var bad []string
	if o.netCore != 0 {
		bad = append(bad, "-net-core")
	}
	if o.netNIC != 0 {
		bad = append(bad, "-net-nic")
	}
	if o.netLat != "" {
		bad = append(bad, "-net-lat")
	}
	if o.shards > 1 || o.shards < 0 {
		bad = append(bad, "-shards")
	}
	if o.hostAdmit != 0 {
		bad = append(bad, "-host-admit")
	}
	if o.drain != "" {
		bad = append(bad, "-drain")
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("%s: cluster-only flag(s) need -hosts > 1 (got -hosts %d)",
		strings.Join(bad, ", "), o.hosts)
}

// applyFaults wires the -faults/-fault-seed/-retry/-deadline flags into
// the config. Injection implies the default retry policy — faulted runs
// recover (retry, then degrade to CPU restructuring) rather than fail —
// and -retry / -deadline tune it.
func applyFaults(o options, cfg *dmxsys.Config) error {
	if o.faults != "" {
		plan, err := faults.ParseSpec(o.faults)
		if err != nil {
			return err
		}
		if o.faultSeed != 0 {
			plan.Seed = o.faultSeed
		}
		cfg.Faults = plan
	}
	if o.faults == "" && o.retry == 0 && o.deadline == "" {
		return nil
	}
	r := faults.DefaultRetry()
	if o.retry > 0 {
		r.MaxAttempts = o.retry
	}
	if o.deadline != "" {
		d, err := faults.ParseDuration(o.deadline)
		if err != nil {
			return err
		}
		r.StageDeadline = d
	}
	cfg.Retry = r
	return nil
}

// printFaultCounts summarizes the incidents the run actually observed.
func printFaultCounts(sys *dmxsys.System, cfg dmxsys.Config, out io.Writer) {
	if cfg.Faults == nil {
		return
	}
	c := sys.FaultCounts()
	fmt.Fprintf(out, "faults observed: %d DRX outages, %d link incidents, %d stalls, %d transients\n",
		c.DRXOutages, c.LinkIncidents, c.Stalls, c.Transients)
}

// loadSpec assembles the traffic spec the load and cluster modes share.
func loadSpec(o options) (traffic.Spec, error) {
	arr, err := traffic.ParseArrival(o.arrival)
	if err != nil {
		return traffic.Spec{}, err
	}
	spec := traffic.Spec{Arrival: arr, Rate: o.rate, Requests: o.requests, Seed: o.seed}
	if o.slo != "" {
		d, err := faults.ParseDuration(o.slo)
		if err != nil {
			return traffic.Spec{}, fmt.Errorf("-slo: %w", err)
		}
		spec.Deadline = d
	}
	return spec, nil
}

// runCluster replicates cfg onto -hosts hosts and drives the fleet
// through the cluster router.
func runCluster(o options, cfg dmxsys.Config, pipes []*dmxsys.Pipeline, out io.Writer) error {
	spec, err := loadSpec(o)
	if err != nil {
		return err
	}
	pol, err := cluster.ParsePolicy(o.router)
	if err != nil {
		return err
	}
	rc := cluster.RouterConfig{Policy: pol, HostAdmit: o.hostAdmit}
	if o.drain != "" {
		inc, window, ok := strings.Cut(o.drain, "/")
		if _, err := fmt.Sscanf(inc, "%d", &rc.DrainIncidents); err != nil || rc.DrainIncidents < 1 {
			return fmt.Errorf("-drain: want 'N/window' or 'N' (got %q)", o.drain)
		}
		if ok {
			d, err := faults.ParseDuration(window)
			if err != nil {
				return fmt.Errorf("-drain window: %w", err)
			}
			rc.DrainWindow = d
		}
	}
	nc := cluster.NetConfig{NICBytesPerSec: o.netNIC, CoreBytesPerSec: o.netCore}
	if o.netLat != "" {
		d, err := faults.ParseDuration(o.netLat)
		if err != nil {
			return fmt.Errorf("-net-lat: %w", err)
		}
		nc.Latency = d
	}
	f, err := cluster.New(cluster.FleetConfig{Hosts: o.hosts, Base: cfg, Net: nc, Router: rc,
		Shards: o.shards}, pipes)
	if err != nil {
		return err
	}
	rep, err := f.Run(spec)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, rep)
	fmt.Fprintf(out, "router: policy=%v", pol)
	for h, perApp := range f.Routed() {
		n := 0
		for _, c := range perApp {
			n += c
		}
		fmt.Fprintf(out, " h%d=%d", h, n)
	}
	fmt.Fprintln(out)
	if cfg.Faults != nil {
		c := f.FaultCounts()
		fmt.Fprintf(out, "faults observed: %d DRX outages, %d link incidents, %d stalls, %d transients\n",
			c.DRXOutages, c.LinkIncidents, c.Stalls, c.Transients)
	}
	if o.stats && cfg.Obs != nil {
		fmt.Fprintln(out, obs.Aggregate(cfg.Obs.Events(), obs.Duration(rep.Makespan)))
	}
	return writeTraceFile(o, cfg, out)
}

// runLoad drives the assembled system in load-generation mode.
func runLoad(o options, cfg dmxsys.Config, sys *dmxsys.System, out io.Writer) error {
	spec, err := loadSpec(o)
	if err != nil {
		return err
	}
	rep, err := sys.RunLoad(spec)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, rep)
	printFaultCounts(sys, cfg, out)
	if o.stats && cfg.Obs != nil {
		fmt.Fprintln(out, obs.Aggregate(cfg.Obs.Events(), obs.Duration(rep.Makespan)))
	}
	return writeTraceFile(o, cfg, out)
}

// writeTraceFile dumps the recorded event stream as Perfetto JSON when
// -trace-out was given.
func writeTraceFile(o options, cfg dmxsys.Config, out io.Writer) error {
	if o.traceOut == "" {
		return nil
	}
	rec := cfg.Obs
	f, err := os.Create(o.traceOut)
	if err != nil {
		return err
	}
	werr := obs.WriteTrace(f, rec.Events())
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("writing trace: %w", werr)
	}
	fmt.Fprintf(out, "trace: %d events written to %s (open at ui.perfetto.dev)\n",
		rec.Len(), o.traceOut)
	return nil
}

func selectBenchmarks(name string, sc workload.Scale) ([]*workload.Benchmark, error) {
	if name == "all" {
		return workload.Suite(sc)
	}
	if name == "pir-ner" {
		b, err := workload.PIRWithNER(sc)
		if err != nil {
			return nil, err
		}
		return []*workload.Benchmark{b}, nil
	}
	if name == "genai-rag" {
		b, err := workload.GenAIRAG(sc)
		if err != nil {
			return nil, err
		}
		return []*workload.Benchmark{b}, nil
	}
	suite, err := workload.Suite(sc)
	if err != nil {
		return nil, err
	}
	for _, b := range suite {
		if b.Name == name {
			return []*workload.Benchmark{b}, nil
		}
	}
	return nil, fmt.Errorf("unknown benchmark %q", name)
}
