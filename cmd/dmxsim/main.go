// Command dmxsim runs a single system configuration and prints the
// latency/throughput/energy report: one benchmark (or the full suite),
// a concurrency level, a DRX placement, and fabric/DRX knobs.
//
// Examples:
//
//	dmxsim -app sound-detection -apps 4 -placement bump
//	dmxsim -app all -apps 15 -placement multiaxl -gen 4
//	dmxsim -app database-hash-join -placement bump -lanes 64 -v
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dmx/internal/dmxsys"
	"dmx/internal/pcie"
	"dmx/internal/sim"
	"dmx/internal/workload"
)

var placements = map[string]dmxsys.Placement{
	"allcpu":     dmxsys.AllCPU,
	"multiaxl":   dmxsys.MultiAxl,
	"integrated": dmxsys.Integrated,
	"standalone": dmxsys.Standalone,
	"pcie":       dmxsys.PCIeIntegrated,
	"bump":       dmxsys.BumpInTheWire,
}

func main() {
	app := flag.String("app", "all", "benchmark name or 'all' (video-surveillance, sound-detection, brain-stimulation, personal-info-redaction, database-hash-join, pir-ner, genai-rag)")
	napps := flag.Int("apps", 1, "concurrent application instances")
	placement := flag.String("placement", "bump", "allcpu | multiaxl | integrated | standalone | pcie | bump")
	gen := flag.Int("gen", 3, "PCIe generation (3, 4, 5)")
	lanes := flag.Int("lanes", 128, "DRX RE lanes (power of two)")
	verbose := flag.Bool("v", false, "print per-app breakdowns")
	trace := flag.Bool("trace", false, "print the Fig. 10 event trace")
	flag.Parse()

	p, ok := placements[strings.ToLower(*placement)]
	if !ok {
		fail("unknown placement %q (want one of allcpu, multiaxl, integrated, standalone, pcie, bump)", *placement)
	}
	cfg := dmxsys.DefaultConfig(p)
	switch *gen {
	case 3:
		cfg.Gen = pcie.Gen3
	case 4:
		cfg.Gen = pcie.Gen4
	case 5:
		cfg.Gen = pcie.Gen5
	default:
		fail("unsupported PCIe generation %d", *gen)
	}
	cfg.DRX = cfg.DRX.WithLanes(*lanes)
	if *trace {
		cfg.Trace = func(at sim.Time, app, event string) {
			fmt.Printf("  [%12v] %-24s %s\n", at, app, event)
		}
	}

	benches, err := selectBenchmarks(*app)
	if err != nil {
		fail("%v", err)
	}
	pipes := make([]*dmxsys.Pipeline, 0, *napps*len(benches))
	for i := 0; i < *napps; i++ {
		for _, b := range benches {
			pipes = append(pipes, b.Pipeline)
		}
	}
	fmt.Printf("simulating %d app instance(s) of %s under %v (PCIe %v, %d RE lanes)...\n",
		len(pipes), *app, p, cfg.Gen, *lanes)
	sys, err := dmxsys.New(cfg, pipes)
	if err != nil {
		fail("%v", err)
	}
	rep := sys.Run()
	fmt.Println(rep)
	if *verbose {
		for _, a := range rep.Apps {
			thr := a.Throughput(2)
			fmt.Printf("  %-26s total %-12v kernel %-12v restructure %-12v movement %-12v (%.1f req/s)\n",
				a.App, a.Total, a.KernelTime, a.RestructureTime, a.MovementTime, thr)
		}
	}
	fmt.Printf("energy: %.2f J ", rep.EnergyJ)
	for k, v := range rep.EnergyBreakdown {
		fmt.Printf("%s=%.2f ", k, v)
	}
	fmt.Println()
}

func selectBenchmarks(name string) ([]*workload.Benchmark, error) {
	if name == "all" {
		return workload.Suite(workload.PaperScale)
	}
	if name == "pir-ner" {
		b, err := workload.PIRWithNER(workload.PaperScale)
		if err != nil {
			return nil, err
		}
		return []*workload.Benchmark{b}, nil
	}
	if name == "genai-rag" {
		b, err := workload.GenAIRAG(workload.PaperScale)
		if err != nil {
			return nil, err
		}
		return []*workload.Benchmark{b}, nil
	}
	suite, err := workload.Suite(workload.PaperScale)
	if err != nil {
		return nil, err
	}
	for _, b := range suite {
		if b.Name == name {
			return []*workload.Benchmark{b}, nil
		}
	}
	return nil, fmt.Errorf("unknown benchmark %q", name)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dmxsim: "+format+"\n", args...)
	os.Exit(1)
}
