// Command dmxsim runs a single system configuration and prints the
// latency/throughput/energy report: one benchmark (or the full suite),
// a concurrency level, a DRX placement, and fabric/DRX knobs.
//
// Examples:
//
//	dmxsim -app sound-detection -apps 4 -placement bump
//	dmxsim -app all -apps 15 -placement multiaxl -gen 4
//	dmxsim -app database-hash-join -placement bump -lanes 64 -v
//	dmxsim -app sound-detection -trace-out trace.json -stats
//
// -trace-out writes the structured trace as Chrome trace-event JSON;
// open it at ui.perfetto.dev. -stats prints per-device utilization and
// per-stage latency histograms aggregated from the same event stream.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"dmx/internal/dmxsys"
	"dmx/internal/obs"
	"dmx/internal/pcie"
	"dmx/internal/sim"
	"dmx/internal/workload"
)

var placements = map[string]dmxsys.Placement{
	"allcpu":     dmxsys.AllCPU,
	"multiaxl":   dmxsys.MultiAxl,
	"integrated": dmxsys.Integrated,
	"standalone": dmxsys.Standalone,
	"pcie":       dmxsys.PCIeIntegrated,
	"bump":       dmxsys.BumpInTheWire,
}

// options collects every flag so that run is testable with a fixed
// configuration and an in-memory writer.
type options struct {
	app       string
	napps     int
	placement string
	gen       int
	lanes     int
	verbose   bool
	trace     bool
	stats     bool
	traceOut  string
}

func main() {
	var o options
	flag.StringVar(&o.app, "app", "all", "benchmark name or 'all' (video-surveillance, sound-detection, brain-stimulation, personal-info-redaction, database-hash-join, pir-ner, genai-rag)")
	flag.IntVar(&o.napps, "apps", 1, "concurrent application instances")
	flag.StringVar(&o.placement, "placement", "bump", "allcpu | multiaxl | integrated | standalone | pcie | bump")
	flag.IntVar(&o.gen, "gen", 3, "PCIe generation (3, 4, 5)")
	flag.IntVar(&o.lanes, "lanes", 128, "DRX RE lanes (power of two)")
	flag.BoolVar(&o.verbose, "v", false, "print per-app breakdowns")
	flag.BoolVar(&o.trace, "trace", false, "print the Fig. 10 event trace")
	flag.BoolVar(&o.stats, "stats", false, "print device utilization and per-stage latency histograms")
	flag.StringVar(&o.traceOut, "trace-out", "", "write a Perfetto-loadable trace (Chrome trace-event JSON) to this file")
	flag.Parse()

	// One buffered writer carries everything — the event trace, the
	// report, and the energy line — so output order is exactly emission
	// order regardless of how the pieces are produced.
	out := bufio.NewWriter(os.Stdout)
	err := run(o, out)
	if ferr := out.Flush(); err == nil {
		err = ferr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmxsim: %v\n", err)
		os.Exit(1)
	}
}

func run(o options, out io.Writer) error {
	p, ok := placements[strings.ToLower(o.placement)]
	if !ok {
		return fmt.Errorf("unknown placement %q (want one of allcpu, multiaxl, integrated, standalone, pcie, bump)", o.placement)
	}
	cfg := dmxsys.DefaultConfig(p)
	switch o.gen {
	case 3:
		cfg.Gen = pcie.Gen3
	case 4:
		cfg.Gen = pcie.Gen4
	case 5:
		cfg.Gen = pcie.Gen5
	default:
		return fmt.Errorf("unsupported PCIe generation %d", o.gen)
	}
	cfg.DRX = cfg.DRX.WithLanes(o.lanes)
	if o.trace {
		cfg.Trace = func(at sim.Time, app, event string) {
			fmt.Fprintf(out, "  [%12v] %-24s %s\n", at, app, event)
		}
	}
	if o.traceOut != "" || o.stats {
		cfg.Obs = obs.New()
	}

	benches, err := selectBenchmarks(o.app)
	if err != nil {
		return err
	}
	pipes := make([]*dmxsys.Pipeline, 0, o.napps*len(benches))
	for i := 0; i < o.napps; i++ {
		for _, b := range benches {
			pipes = append(pipes, b.Pipeline)
		}
	}
	fmt.Fprintf(out, "simulating %d app instance(s) of %s under %v (PCIe %v, %d RE lanes)...\n",
		len(pipes), o.app, p, cfg.Gen, o.lanes)
	sys, err := dmxsys.New(cfg, pipes)
	if err != nil {
		return err
	}
	rep := sys.Run()
	fmt.Fprintln(out, rep)
	if o.verbose {
		for _, a := range rep.Apps {
			thr := a.Throughput(2)
			fmt.Fprintf(out, "  %-26s total %-12v kernel %-12v restructure %-12v movement %-12v (%.1f req/s)\n",
				a.App, a.Total, a.KernelTime, a.RestructureTime, a.MovementTime, thr)
		}
	}
	fmt.Fprintf(out, "energy: %.2f J ", rep.EnergyJ)
	keys := make([]string, 0, len(rep.EnergyBreakdown))
	for k := range rep.EnergyBreakdown {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(out, "%s=%.2f ", k, rep.EnergyBreakdown[k])
	}
	fmt.Fprintln(out)
	if o.stats {
		fmt.Fprintln(out, rep.Metrics)
	}
	if o.traceOut != "" {
		rec := cfg.Obs
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		werr := obs.WriteTrace(f, rec.Events())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing trace: %w", werr)
		}
		fmt.Fprintf(out, "trace: %d events written to %s (open at ui.perfetto.dev)\n",
			rec.Len(), o.traceOut)
	}
	return nil
}

func selectBenchmarks(name string) ([]*workload.Benchmark, error) {
	if name == "all" {
		return workload.Suite(workload.PaperScale)
	}
	if name == "pir-ner" {
		b, err := workload.PIRWithNER(workload.PaperScale)
		if err != nil {
			return nil, err
		}
		return []*workload.Benchmark{b}, nil
	}
	if name == "genai-rag" {
		b, err := workload.GenAIRAG(workload.PaperScale)
		if err != nil {
			return nil, err
		}
		return []*workload.Benchmark{b}, nil
	}
	suite, err := workload.Suite(workload.PaperScale)
	if err != nil {
		return nil, err
	}
	for _, b := range suite {
		if b.Name == name {
			return []*workload.Benchmark{b}, nil
		}
	}
	return nil, fmt.Errorf("unknown benchmark %q", name)
}
