// Command benchsnap runs a benchmark package set once and writes a
// compact JSON snapshot (benchmark name → ns/op, allocs/op).
//
// Usage:
//
//	benchsnap                          # DRX data-plane set, JSON to stdout
//	benchsnap -o BENCH_drx_baseline.json
//	benchsnap -check BENCH_drx_baseline.json
//	benchsnap -pkgs ./internal/sim/ -o BENCH_engine_baseline.json
//	benchsnap -pkgs ./internal/sim/ -check BENCH_engine_baseline.json
//
// The snapshot is a smoke artifact, not a performance gate: -benchtime=1x
// timings on shared CI runners are noisy, so -check compares only the
// *shape* of the data — the benchmark set and each benchmark's allocs/op,
// which are deterministic — and reports timing drift informationally.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// measurement is one benchmark's snapshot row.
type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// defaultPackages is the DRX data-plane benchmark set, the original
// snapshot scope (kept as the default so existing invocations and the
// committed BENCH_drx_baseline.json stay valid).
const defaultPackages = "./internal/drx/,./internal/drxc/,./internal/dmxrt/"

// benchLine matches `go test -bench` output rows, e.g.
//
//	BenchmarkCompile/cached-8  123  116.6 ns/op  0 B/op  0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:.*?\s(\d+) allocs/op)?`)

func main() { os.Exit(run()) }

func run() int {
	out := flag.String("o", "", "write snapshot JSON to this file (default: stdout)")
	check := flag.String("check", "", "compare against a baseline snapshot instead of writing")
	benchtime := flag.String("benchtime", "1x", "value passed to go test -benchtime")
	pkgs := flag.String("pkgs", defaultPackages, "comma-separated benchmark packages to snapshot")
	flag.Parse()

	pkgList := strings.Split(*pkgs, ",")
	for i := range pkgList {
		pkgList[i] = strings.TrimSpace(pkgList[i])
	}

	snap, err := capture(*benchtime, pkgList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		return 1
	}

	if *check != "" {
		return compare(*check, *pkgs, snap)
	}

	blob, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		return 1
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
		return 0
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		return 1
	}
	return 0
}

// capture runs the benchmark packages and parses the measurements.
func capture(benchtime string, pkgs []string) (map[string]measurement, error) {
	args := append([]string{"test", "-run", "^$", "-bench", ".", "-benchtime", benchtime}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w\n%s", err, raw)
	}
	snap := make(map[string]measurement)
	for _, line := range strings.Split(string(raw), "\n") {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("parse %q: %w", line, err)
		}
		var allocs int64
		if m[3] != "" {
			allocs, err = strconv.ParseInt(m[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("parse %q: %w", line, err)
			}
		}
		snap[m[1]] = measurement{NsPerOp: ns, AllocsPerOp: allocs}
	}
	if len(snap) == 0 {
		return nil, fmt.Errorf("no benchmark rows parsed from go test output")
	}
	return snap, nil
}

// compare reports differences against a baseline file. Missing or extra
// benchmarks and alloc regressions fail; timing drift is informational
// because -benchtime=1x numbers on shared runners are noise.
func compare(path, pkgs string, got map[string]measurement) int {
	blob, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		return 1
	}
	var want map[string]measurement
	if err := json.Unmarshal(blob, &want); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %s: %v\n", path, err)
		return 1
	}
	names := make([]string, 0, len(want)+len(got))
	for n := range want {
		names = append(names, n)
	}
	for n := range got {
		if _, ok := want[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	bad := false
	for _, n := range names {
		w, inWant := want[n]
		g, inGot := got[n]
		switch {
		case !inGot:
			fmt.Printf("MISSING  %s (in baseline, not in run)\n", n)
			bad = true
		case !inWant:
			fmt.Printf("NEW      %s (not in baseline; regenerate the snapshot)\n", n)
			bad = true
		case g.AllocsPerOp > w.AllocsPerOp:
			fmt.Printf("ALLOCS   %s: %d allocs/op, baseline %d\n", n, g.AllocsPerOp, w.AllocsPerOp)
			bad = true
		default:
			fmt.Printf("ok       %-55s %12.0f ns/op (baseline %12.0f)  %d allocs/op\n",
				n, g.NsPerOp, w.NsPerOp, g.AllocsPerOp)
		}
	}
	if bad {
		regen := fmt.Sprintf("go run ./cmd/benchsnap -o %s", path)
		if pkgs != defaultPackages {
			regen = fmt.Sprintf("go run ./cmd/benchsnap -pkgs %s -o %s", pkgs, path)
		}
		fmt.Printf("\nbenchsnap: snapshot drifted; regenerate with: %s\n", regen)
		return 1
	}
	return 0
}
