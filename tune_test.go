package dmx

import (
	"reflect"
	"strings"
	"testing"

	"dmx/internal/sweep"
)

// tuneBase is the pinned tuning scenario the contract tests share: a
// two-app test-scale mix driven past single-host capacity with a tight
// SLO, so goodput rewards coordinated moves (placement + shedding /
// scheduling), not any one knob alone.
func tuneBase() Spec {
	return Spec{
		Apps:     []string{"personal-info-redaction", "sound-detection"},
		Scale:    "test",
		Arrival:  "poisson",
		Rate:     150000,
		Requests: 32,
		Seed:     11,
		SLO:      "100us",
	}
}

func tuneSpec() TuneSpec {
	return TuneSpec{
		Base:       tuneBase(),
		Placements: []string{"multiaxl", "integrated", "standalone", "pcie", "bump"},
		MaxRounds:  3,
	}
}

// scoreReport recomputes the tuner's objective from a replayed report —
// the same arithmetic tune.scoreOf applies, duplicated here so the
// replay-identity test cannot pass vacuously.
func scoreReport(rep LoadReport) (goodput float64, p99 Duration) {
	completed, missed := 0, 0
	for _, a := range rep.PerApp {
		completed += a.Completed
		missed += a.Missed
		if a.P99 > p99 {
			p99 = a.P99
		}
	}
	if sec := rep.Makespan.Seconds(); sec > 0 {
		goodput = float64(completed-missed) / sec
	}
	return goodput, p99
}

func TestTuneDeterministicAcrossWorkers(t *testing.T) {
	var base TuneResult
	for i, workers := range []int{1, 2, 8} {
		prev := sweep.SetWorkers(workers)
		res, err := Tune(tuneSpec())
		sweep.SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = res
			if res.Evaluations < 10 {
				t.Fatalf("only %d evaluations; the search barely ran", res.Evaluations)
			}
			continue
		}
		if !reflect.DeepEqual(res, base) {
			t.Fatalf("TuneResult at %d workers diverges from 1 worker:\n%s\nvs\n%s",
				workers, res, base)
		}
	}
}

func TestTuneWinnerReplayExact(t *testing.T) {
	res, err := Tune(tuneSpec())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := res.Winner.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	goodput, p99 := scoreReport(rep)
	if goodput != res.Goodput || p99 != res.P99 {
		t.Fatalf("replay diverges: goodput %v vs %v, p99 %v vs %v",
			goodput, res.Goodput, p99, res.P99)
	}
	// The winner document itself must round-trip.
	b, err := MarshalSpec(res.Winner)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, res.Winner) {
		t.Fatal("winner spec does not round-trip through JSON")
	}
}

// TestTunedBeatsSingleAxisGrid pins the scenario where coordinate
// descent earns its keep: the tuned configuration must strictly beat
// every single-axis deviation from the base — the best any grid sweep
// over one knob could find.
func TestTunedBeatsSingleAxisGrid(t *testing.T) {
	ts := tuneSpec()
	res, err := Tune(ts)
	if err != nil {
		t.Fatal(err)
	}

	evalSpec := func(s Spec) (float64, bool) {
		rep, err := s.Simulate()
		if err != nil {
			return 0, false
		}
		g, _ := scoreReport(rep)
		return g, true
	}
	var grid []Spec
	base := ts.Base
	grid = append(grid, base)
	for _, p := range ts.Placements {
		s := base
		s.Placement = p
		grid = append(grid, s)
	}
	for _, d := range []string{"fifo", "priority", "wfq", "edf", "srs"} {
		s := base
		s.Discipline = d
		grid = append(grid, s)
	}
	for _, w := range []string{"50us", "100us", "200us", "500us", "1ms"} {
		s := base
		s.BatchWindow = w
		grid = append(grid, s)
	}
	for _, a := range []int{8, 16, 32, 64} {
		s := base
		s.Admit = a
		grid = append(grid, s)
	}
	for _, r := range []int{2, 4} {
		s := base
		s.Retry = r
		grid = append(grid, s)
	}

	bestGrid, bestAt := -1.0, ""
	for _, s := range grid {
		if g, ok := evalSpec(s); ok && g > bestGrid {
			bestGrid, bestAt = g, specAxesLine(s)
		}
	}
	t.Logf("tuned %.2f req/s (%s) vs best single-axis %.2f req/s (%s), %d evaluations",
		res.Goodput, specAxesLine(res.Winner), bestGrid, bestAt, res.Evaluations)
	if res.Goodput <= bestGrid {
		t.Fatalf("tuned goodput %.2f does not beat the best single-axis grid point %.2f (%s)",
			res.Goodput, bestGrid, bestAt)
	}
}

func TestTuneRejectsBadSpecs(t *testing.T) {
	ts := tuneSpec()
	ts.Base.Arrival = ""
	if _, err := Tune(ts); err == nil || !strings.Contains(err.Error(), "arrival") {
		t.Errorf("base without arrival: %v", err)
	}
	ts = tuneSpec()
	ts.Placements = []string{"fpga"}
	if _, err := Tune(ts); err == nil || !strings.Contains(err.Error(), "fpga") {
		t.Errorf("bad placement token: %v", err)
	}
	ts = tuneSpec()
	ts.Base.Placement = "warp"
	if _, err := Tune(ts); err == nil || !strings.Contains(err.Error(), "placement") {
		t.Errorf("bad base placement: %v", err)
	}
}
