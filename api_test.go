package dmx

// The public surface of package dmx is a compatibility contract: the
// aliases, constants, and functions in dmx.go/chain.go are what
// downstream users build against. This test renders every exported
// declaration into a canonical listing and diffs it against a checked-in
// golden file, so any surface change — addition, removal, or signature
// edit — shows up in review as a golden diff rather than slipping
// through. Regenerate deliberately with:
//
//	go test -run TestPublicAPISurface -update .
import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update", false, "rewrite golden files")

// apiSurface parses the package's non-test sources and renders each
// exported top-level declaration (bodies stripped, unexported members
// filtered) in filename-then-source order.
func apiSurface(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["dmx"]
	if !ok {
		t.Fatalf("package dmx not found (got %v)", pkgs)
	}
	names := make([]string, 0, len(pkg.Files))
	for name := range pkg.Files {
		names = append(names, name)
	}
	sort.Strings(names)

	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces, Tabwidth: 4}
	for _, name := range names {
		f := pkg.Files[name]
		if !ast.FileExports(f) {
			continue
		}
		fmt.Fprintf(&buf, "## %s\n\n", filepath.Base(name))
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				d.Body = nil
				d.Doc = nil
			case *ast.GenDecl:
				d.Doc = nil
				for _, sp := range d.Specs {
					switch sp := sp.(type) {
					case *ast.TypeSpec:
						sp.Doc, sp.Comment = nil, nil
					case *ast.ValueSpec:
						sp.Doc, sp.Comment = nil, nil
					}
				}
			}
			if err := cfg.Fprint(&buf, fset, d); err != nil {
				t.Fatal(err)
			}
			buf.WriteString("\n\n")
		}
	}
	return buf.String()
}

func TestPublicAPISurface(t *testing.T) {
	got := apiSurface(t)
	golden := filepath.Join("testdata", "api_surface.txt")
	if *updateAPI {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got == string(want) {
		return
	}
	// Point at the first diverging line so the diff is actionable.
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("public API surface changed at line %d:\n  golden: %s\n  source: %s\n"+
				"intentional? regenerate with: go test -run TestPublicAPISurface -update .",
				i+1, wl[i], gl[i])
		}
	}
	t.Fatalf("public API surface changed: golden has %d lines, source renders %d\n"+
		"intentional? regenerate with: go test -run TestPublicAPISurface -update .",
		len(wl), len(gl))
}
