package dmx_test

import (
	"strings"
	"testing"

	"dmx"
	"dmx/internal/accel"
	"dmx/internal/restructure"
)

func soundParts(t *testing.T) (*dmx.AccelSpec, *dmx.AccelSpec, *dmx.RestructureKernel) {
	t.Helper()
	fft, err := accel.NewFFT(64, 128)
	if err != nil {
		t.Fatal(err)
	}
	svm := accel.NewSVM(64, 8, 4, 1)
	mel := restructure.MelSpectrogram(64, 64, 8)
	return fft, svm, mel
}

func TestNewChainBuildsValidPipeline(t *testing.T) {
	fft, svm, mel := soundParts(t)
	pipe, err := dmx.NewChain("sound").
		Kernel(fft, 64*128*4).
		Motion(mel, 64*64*8, 64*8*4).
		Kernel(svm, 64*8*4).
		IO(64*128*4, 64*4).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(pipe.Stages) != 2 || len(pipe.Hops) != 1 {
		t.Fatalf("built %d stages / %d hops", len(pipe.Stages), len(pipe.Hops))
	}
	rep, err := dmx.Simulate(dmx.DefaultConfig(dmx.BumpInTheWire), pipe)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Apps[0].Total <= 0 {
		t.Error("built pipeline did not simulate")
	}
}

func TestNewChainOrderingErrors(t *testing.T) {
	fft, svm, mel := soundParts(t)
	if _, err := dmx.NewChain("k-k").Kernel(fft, 1).Kernel(svm, 1).IO(1, 1).Build(); err == nil ||
		!strings.Contains(err.Error(), "Motion between") {
		t.Errorf("Kernel-Kernel accepted: %v", err)
	}
	if _, err := dmx.NewChain("m-first").Motion(mel, 1, 1).IO(1, 1).Build(); err == nil ||
		!strings.Contains(err.Error(), "preceding Kernel") {
		t.Errorf("leading Motion accepted: %v", err)
	}
	if _, err := dmx.NewChain("trailing-m").Kernel(fft, 1).Motion(mel, 1, 1).IO(1, 1).Build(); err == nil ||
		!strings.Contains(err.Error(), "consuming Kernel") {
		t.Errorf("trailing Motion accepted: %v", err)
	}
	// Missing IO fails pipeline validation.
	if _, err := dmx.NewChain("no-io").
		Kernel(fft, 64*128*4).Motion(mel, 64*64*8, 64*8*4).Kernel(svm, 64*8*4).Build(); err == nil {
		t.Error("missing IO accepted")
	}
	// The first error sticks through subsequent calls.
	if _, err := dmx.NewChain("sticky").Motion(mel, 1, 1).Kernel(fft, 1).Build(); err == nil ||
		!strings.Contains(err.Error(), "preceding Kernel") {
		t.Errorf("error did not stick: %v", err)
	}
}

func TestBuilderCopyIsIndependent(t *testing.T) {
	fft, svm, mel := soundParts(t)
	b := dmx.NewChain("copy").
		Kernel(fft, 64*128*4).
		Motion(mel, 64*64*8, 64*8*4).
		Kernel(svm, 64*8*4).
		IO(64*128*4, 64*4)
	p1, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Error("Build returned the same pipeline twice")
	}
	p1.Name = "mutated"
	if p2.Name != "copy" {
		t.Error("pipelines share state")
	}
}
