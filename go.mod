module dmx

go 1.22
