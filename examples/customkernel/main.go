// Custom kernel: author a new data restructuring kernel in the IR,
// validate it, compile it with the DRX compiler, inspect the generated
// assembly, and run it on the machine simulator — checking the result
// against the reference interpreter.
//
// The kernel dequantizes an int8 feature map and applies per-channel
// scale/offset (the "adapter" one writes when chaining a quantized
// accelerator into a float pipeline).
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"
	"strings"

	"dmx/internal/drx"
	"dmx/internal/drxc"
	"dmx/internal/restructure"
	"dmx/internal/tensor"
)

func main() {
	const rows, ch = 512, 8

	// out[i,c] = (in[i,c] · scale[c]) + offset[c], float32.
	k := &restructure.Kernel{
		Name: "dequantize",
		Params: []restructure.Param{
			{Name: "in", DType: tensor.Int8, Shape: []int{rows, ch}, Dir: restructure.In},
			{Name: "scale", DType: tensor.Float32, Shape: []int{ch}, Dir: restructure.In},
			{Name: "offset", DType: tensor.Float32, Shape: []int{ch}, Dir: restructure.In},
			{Name: "out", DType: tensor.Float32, Shape: []int{rows, ch}, Dir: restructure.Out},
		},
		Stages: []restructure.Stage{
			&restructure.MapStage{
				Out: "out",
				Ins: []string{"in", "scale", "offset"},
				Accs: []restructure.Access{
					restructure.IdentityAccess(2),
					channel(), // scale[c]
					channel(), // offset[c]
				},
				Expr: restructure.AddE(restructure.MulE(restructure.InN(0), restructure.InN(1)), restructure.InN(2)),
			},
		},
	}
	if err := k.Validate(); err != nil {
		log.Fatal(err)
	}

	// Compile for the default DRX and show a slice of the assembly.
	cfg := drx.DefaultConfig()
	compiled, err := drxc.Compile(k, cfg)
	if err != nil {
		log.Fatal(err)
	}
	asm := strings.Split(compiled.Prog.Disassemble(), "\n")
	fmt.Printf("compiled %q to %d instructions; first lines:\n", k.Name, len(compiled.Prog.Instrs))
	for _, line := range asm[:min(12, len(asm))] {
		fmt.Println("  ", line)
	}

	// Inputs: a deterministic ramp, per-channel scales.
	in := tensor.New(tensor.Int8, rows, ch)
	for i := 0; i < rows; i++ {
		for c := 0; c < ch; c++ {
			in.Set(float64((i+c)%255-128), i, c)
		}
	}
	scale := tensor.New(tensor.Float32, ch)
	offset := tensor.New(tensor.Float32, ch)
	for c := 0; c < ch; c++ {
		scale.Set(0.5+float64(c)*0.1, c)
		offset.Set(float64(c), c)
	}
	inputs := map[string]*tensor.Tensor{"in": in, "scale": scale, "offset": offset}

	// Run on the DRX machine and against the reference interpreter.
	machine, err := drx.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	got, res, err := drxc.Execute(compiled, machine, inputs)
	if err != nil {
		log.Fatal(err)
	}
	want, err := restructure.Run(k, inputs)
	if err != nil {
		log.Fatal(err)
	}
	// float32 lanes vs the float64 reference: allow rounding at the
	// magnitude of the dequantized values (|out| ≲ 160).
	if !tensor.AllClose(want["out"], got["out"], 1e-3) {
		log.Fatal("DRX output diverges from the reference interpreter")
	}
	fmt.Printf("DRX result matches the reference (%d elements) in %d cycles (%.1f us)\n",
		got["out"].NumElems(), res.Cycles(), res.Seconds(cfg.ClockHz)*1e6)
}

// channel maps output index (i, c) to a per-channel vector index (c).
func channel() restructure.Access {
	return restructure.Access{Offset: []int{0}, Coef: [][]int{{0, 1}}}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
