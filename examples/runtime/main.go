// Runtime: program a chained application against the OpenCL-style host
// runtime (Sec. V of the paper). The host creates a context over two
// accelerators and a DRX, allocates buffers, and enqueues three commands
// with event dependencies — decrypt on the AES accelerator, record
// framing on the DRX, PII scanning on the regex accelerator. Nothing
// executes until the blocking wait, and the final buffer holds real
// redacted text.
//
//	go run ./examples/runtime
package main

import (
	"fmt"
	"log"
	"strings"

	"dmx/internal/accel"
	"dmx/internal/dmxrt"
	"dmx/internal/drx"
	"dmx/internal/restructure"
	"dmx/internal/tensor"
)

func main() {
	const (
		nrec   = 8
		reclen = 48
		key    = "runtime-example"
	)

	// Enumerate devices, as PCIe enumeration would.
	platform := dmxrt.NewPlatform()
	aesSpec, err := accel.NewAESGCM(key)
	if err != nil {
		log.Fatal(err)
	}
	aesDev := platform.AddAccelerator(aesSpec)
	regexDev := platform.AddAccelerator(accel.NewRegexRedact(nrec, reclen))
	drxDev, err := platform.AddDRX(drx.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("devices:")
	for _, d := range platform.Devices() {
		fmt.Printf("  %s\n", d.Name())
	}

	// Host data: seal a corpus with some PII in it.
	plain := []byte(strings.Repeat(" ", nrec*reclen))
	copy(plain, "call (619) 555-0100 or mail eve@example.com;")
	copy(plain[reclen:], "ssn on file: 123-45-6789 (verified)")
	cipherText, err := accel.Seal(key, plain)
	if err != nil {
		log.Fatal(err)
	}

	// Context, buffers, and per-device queues.
	ctx := platform.NewContext()
	cipher := ctx.CreateBuffer("cipher", tensor.FromBytes(cipherText, len(cipherText)))
	decrypted := ctx.CreateEmptyBuffer("plain", tensor.Uint8, nrec*reclen)
	records := ctx.CreateEmptyBuffer("records", tensor.Uint8, nrec, reclen)
	redacted := ctx.CreateEmptyBuffer("redacted", tensor.Uint8, nrec, reclen)
	matches := ctx.CreateEmptyBuffer("matches", tensor.Int32, nrec)

	aesQ := ctx.Queue(aesDev)
	drxQ := ctx.Queue(drxDev)
	regexQ := ctx.Queue(regexDev)

	// Non-blocking enqueues with explicit event dependencies.
	e1 := aesQ.EnqueueKernel(
		map[string]*dmxrt.Buffer{"cipher": cipher},
		map[string]*dmxrt.Buffer{"plain": decrypted})
	e2 := drxQ.EnqueueRestructure(restructure.RecordFrame(nrec, reclen),
		map[string]*dmxrt.Buffer{"plain": decrypted},
		map[string]*dmxrt.Buffer{"records": records}, e1)
	regexQ.EnqueueKernel(
		map[string]*dmxrt.Buffer{"records": records},
		map[string]*dmxrt.Buffer{"redacted": redacted, "matches": matches}, e2)

	// Blocking: drain the context.
	if err := ctx.Finish(); err != nil {
		log.Fatal(err)
	}

	out := redacted.Tensor().Bytes()
	fmt.Println("\nredacted records:")
	for r := 0; r < 2; r++ {
		fmt.Printf("  %q  (matches: %.0f)\n",
			strings.TrimRight(string(out[r*reclen:(r+1)*reclen]), " "),
			matches.Tensor().At(r))
	}
}
