// Sound Detection end to end: the example runs the actual accelerator
// implementations (a real FFT and SVM) chained by the mel-spectrogram
// restructuring kernel executed on the *simulated DRX machine* — the
// compiled DRX program produces the bytes the SVM consumes — and then
// reports the genre decisions plus the DRX's cycle accounting.
//
//	go run ./examples/soundpipeline
package main

import (
	"fmt"
	"log"

	"dmx/internal/drx"
	"dmx/internal/drxc"
	"dmx/internal/restructure"
	"dmx/internal/tensor"
	"dmx/internal/workload"
)

func main() {
	bench, err := workload.SoundDetection(workload.TestScale)
	if err != nil {
		log.Fatal(err)
	}
	inputs, err := bench.Inputs()
	if err != nil {
		log.Fatal(err)
	}

	// Kernel 1: FFT accelerator.
	fft := bench.Pipeline.Stages[0].Accel
	spec, err := fft.Run(inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FFT: %d frames → spectrum %v\n",
		inputs["audio"].Dim(0), spec["spectrum"].Shape())

	// Data motion: compile the mel-spectrogram kernel for the DRX and
	// execute it on the machine simulator.
	frames := spec["spectrum"].Dim(0)
	bins := spec["spectrum"].Dim(1)
	const mels = 8
	kernel := restructure.MelSpectrogram(frames, bins, mels)
	machine, err := drx.New(drx.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	melOut, res, err := drxc.CompileAndRun(kernel, machine, map[string]*tensor.Tensor{
		"spectrum": spec["spectrum"],
		"melw":     restructure.MelWeights(bins, mels),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DRX: restructured %d→%d bytes in %d cycles (%.1f us at 1 GHz)\n",
		res.BytesLoaded, res.BytesStored, res.Cycles(), res.Seconds(1e9)*1e6)

	// Kernel 2: SVM accelerator consumes the DRX's output directly.
	svm := bench.Pipeline.Stages[1].Accel
	out, err := svm.Run(map[string]*tensor.Tensor{"features": melOut["logmel"]})
	if err != nil {
		log.Fatal(err)
	}
	labels := out["labels"]
	hist := map[int]int{}
	for f := 0; f < labels.Dim(0); f++ {
		hist[int(labels.At(f))]++
	}
	fmt.Printf("SVM: genre decisions across %d frames: %v\n", labels.Dim(0), hist)
}
