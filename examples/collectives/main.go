// Collectives: broadcast and all-reduce across a growing accelerator
// pool, comparing the CPU-mediated baseline against DMX's hierarchical
// DRX forwarding (Fig. 17 of the paper).
//
//	go run ./examples/collectives
package main

import (
	"fmt"
	"log"

	"dmx/internal/dmxsys"
	"dmx/internal/sim"
)

func main() {
	const payload = 8 << 20 // 8 MiB per endpoint
	fmt.Printf("%-8s %-26s %-26s\n", "accels", "broadcast (base → DMX)", "all-reduce (base → DMX)")
	for _, n := range []int{4, 8, 16, 32} {
		bb := run(n, false, false)
		bd := run(n, true, false)
		ab := run(n, false, true)
		ad := run(n, true, true)
		fmt.Printf("%-8d %-10v → %-10v   %-10v → %-10v  (%.1fx / %.1fx)\n",
			n, bb, bd, ab, ad,
			bb.Seconds()/bd.Seconds(), ab.Seconds()/ad.Seconds())
	}
}

func run(n int, useDMX, reduce bool) sim.Duration {
	cs, err := dmxsys.NewCollective(dmxsys.CollectiveConfig{
		Accels: n,
		Bytes:  8 << 20,
		Reduce: reduce,
		UseDMX: useDMX,
		Sys:    dmxsys.DefaultConfig(dmxsys.BumpInTheWire),
	})
	if err != nil {
		log.Fatal(err)
	}
	var d sim.Duration
	if reduce {
		d, err = cs.AllReduce()
	} else {
		d, err = cs.Broadcast()
	}
	if err != nil {
		log.Fatal(err)
	}
	return d
}
