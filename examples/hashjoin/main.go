// Database Hash Join end to end: a gzip-compressed table is decompressed
// by the real DEFLATE kernel, parsed into key/amount columns plus a
// columnar payload by the ColumnPack restructuring kernel (reference
// interpreter here; see examples/soundpipeline for the DRX-machine
// variant), and probed against the join accelerator's build side. The
// example then simulates the same pipeline at paper scale under baseline
// and DMX placements.
//
//	go run ./examples/hashjoin
package main

import (
	"fmt"
	"log"

	"dmx"
	"dmx/internal/restructure"
	"dmx/internal/workload"
)

func main() {
	// Functional pass at test scale: real bytes through the whole chain.
	bench, err := workload.DatabaseHashJoin(workload.TestScale)
	if err != nil {
		log.Fatal(err)
	}
	out, err := bench.Exec()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional chain: %d probes, %v hits, matched amount sum %v\n",
		out["joined"].Dim(0), out["hits"].At(0), out["sum"].At(0))

	// The restructuring kernel the chain used, for reference.
	pack := bench.Pipeline.Hops[0].Kernel
	stats := pack.Stats()
	fmt.Printf("restructuring (%s): %d elems, %d ops, %d B in, %d B out\n",
		pack.Name, stats.Elems, stats.Ops, stats.BytesIn, stats.BytesOut)
	_ = restructure.ColumnPack // documented constructor for custom tables

	// Performance pass at paper scale (16 MB tables).
	paper, err := workload.DatabaseHashJoin(workload.PaperScale)
	if err != nil {
		log.Fatal(err)
	}
	for _, placement := range []dmx.Placement{dmx.MultiAxl, dmx.BumpInTheWire} {
		rep, err := dmx.Simulate(dmx.DefaultConfig(placement), paper.Pipeline)
		if err != nil {
			log.Fatal(err)
		}
		a := rep.Apps[0]
		fmt.Printf("%-18v total %-12v restructure %-12v (%.1f joins/s steady-state)\n",
			placement, a.Total, a.RestructureTime, a.Throughput(2))
	}
}
