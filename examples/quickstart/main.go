// Quickstart: build a two-accelerator chain with the public API and
// measure how much of its end-to-end time data motion consumes with
// restructuring on the host CPU (Multi-Axl) versus on bump-in-the-wire
// DRXs (DMX).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dmx"
	"dmx/internal/accel"
	"dmx/internal/restructure"
)

func main() {
	// A chain the paper's Sound Detection benchmark motivates: an FFT
	// accelerator feeding an SVM classifier, with a log-mel spectrogram
	// restructuring between them.
	const (
		frames = 2048
		win    = 1024
		mels   = 40
	)
	bins := win / 2
	fft, err := accel.NewFFT(frames, win)
	if err != nil {
		log.Fatal(err)
	}
	svm := accel.NewSVM(frames, mels, 10, 1)

	audioBytes := int64(frames * win * 4)
	specBytes := int64(frames * bins * 8)
	melBytes := int64(frames * mels * 4)

	pipe, err := dmx.NewChain("quickstart").
		Kernel(fft, audioBytes).
		Motion(restructure.MelSpectrogram(frames, bins, mels), specBytes, melBytes).
		Kernel(svm, melBytes).
		IO(audioBytes, int64(frames*4)).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	for _, placement := range []dmx.Placement{dmx.MultiAxl, dmx.BumpInTheWire} {
		rep, err := dmx.Simulate(dmx.DefaultConfig(placement), pipe)
		if err != nil {
			log.Fatal(err)
		}
		a := rep.Apps[0]
		fmt.Printf("%-18v total %-12v kernels %-12v restructure %-12v movement %v\n",
			placement, a.Total, a.KernelTime, a.RestructureTime, a.MovementTime)
	}
	fmt.Println("\nThe restructuring column is the data motion DMX accelerates;")
	fmt.Println("see cmd/dmxbench for the paper's full evaluation.")
}
