package dmx

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// fullSpec populates every Spec field that can be set together — the
// round-trip must preserve all of them.
func fullSpec() Spec {
	return Spec{
		Apps:       []string{"personal-info-redaction", "sound-detection"},
		Scale:      "test",
		Copies:     2,
		Placement:  "integrated",
		Gen:        4,
		Lanes:      64,
		Discipline: "srs",
		Admit:      32,
		FuseHops:   []FusePair{{App: 0, Hop: 0}},
		Faults:     "drx=5ms/200us,transient=0.01",
		FaultSeed:  42,
		Retry:      4,
		Deadline:   "500us",
		Arrival:    "poisson",
		Rate:       2500,
		Requests:   64,
		Seed:       7,
		SLO:        "30ms",
		Hosts:      2,
		Router:     "least",
		HostAdmit:  48,
		NetCore:    25e9,
		NetNIC:     12.5e9,
		NetLat:     "2us",
		Shards:     3,
	}
}

func TestSpecGoldenRoundTrip(t *testing.T) {
	got, err := MarshalSpec(fullSpec())
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "spec_golden.json")
	if *updateAPI {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("spec JSON drifted from golden:\n--- got ---\n%s--- want ---\n%s"+
			"intentional? regenerate with: go test -run TestSpecGoldenRoundTrip -update .", got, want)
	}
	back, err := UnmarshalSpec(want)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, fullSpec()) {
		t.Fatalf("round trip lost fields:\n got %+v\nwant %+v", back, fullSpec())
	}
	again, err := MarshalSpec(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Fatal("second marshal is not byte-identical to the golden")
	}
}

func TestUnmarshalSpecRejects(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"unknown field", `{"arrival":"poisson","turbo":9}`, "turbo"},
		{"trailing data", `{"arrival":"poisson"}{"arrival":"open"}`, "trailing"},
		{"wrong type", `{"arrival":"poisson","hosts":"four"}`, "hosts"},
		{"not json", `arrival: poisson`, "parsing spec"},
	}
	for _, tc := range cases {
		if _, err := UnmarshalSpec([]byte(tc.doc)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestSpecResolveDefaults(t *testing.T) {
	fc, ts, pipes, err := Spec{Arrival: "poisson", Rate: 1000, Requests: 8}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if fc.Hosts != 1 || fc.Base.Placement != BumpInTheWire || fc.Base.Gen != Gen3 {
		t.Errorf("defaults: hosts=%d placement=%v gen=%v", fc.Hosts, fc.Base.Placement, fc.Base.Gen)
	}
	if len(pipes) != 5 {
		t.Errorf("default suite has %d pipelines, want 5", len(pipes))
	}
	if ts.Arrival != Poisson || ts.Rate != 1000 || ts.Requests != 8 {
		t.Errorf("traffic %+v", ts)
	}
}

func TestSpecResolveErrors(t *testing.T) {
	base := Spec{Arrival: "poisson", Scale: "test", Apps: []string{"sound-detection"}}
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"no arrival", func(s *Spec) { s.Arrival = "" }, "arrival"},
		{"bad arrival", func(s *Spec) { s.Arrival = "bursty" }, "bursty"},
		{"bad scale", func(s *Spec) { s.Scale = "huge" }, "scale"},
		{"bad placement", func(s *Spec) { s.Placement = "fpga" }, "placement"},
		{"bad gen", func(s *Spec) { s.Gen = 6 }, "gen"},
		{"bad discipline", func(s *Spec) { s.Discipline = "lifo" }, "discipline"},
		{"unknown app", func(s *Spec) { s.Apps = []string{"nope"} }, "known"},
		{"bad duration", func(s *Spec) { s.SLO = "fast" }, "slo"},
		{"bad router", func(s *Spec) { s.Router = "random" }, "policy"},
		{"negative copies", func(s *Spec) { s.Copies = -1 }, "copies"},
		{"cluster-only on one host", func(s *Spec) { s.NetLat = "2us"; s.Shards = 2 }, "hosts > 1"},
	}
	for _, tc := range cases {
		s := base
		tc.mutate(&s)
		if _, _, _, err := s.Resolve(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// A one-host spec must replay byte-identically through both the
// cluster path (Spec.Simulate) and direct resolution — and the fused
// configuration must reach the system (fuse + batch conflicts surface
// at build time).
func TestSpecSimulateReplayAndConflicts(t *testing.T) {
	s := Spec{
		Apps: []string{"personal-info-redaction"}, Scale: "test",
		Placement: "integrated", Arrival: "poisson", Rate: 2000, Requests: 8, Seed: 3,
	}
	rep, err := s.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	fc, ts, pipes, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := SimulateCluster(fc, ts, pipes...)
	if err != nil {
		t.Fatal(err)
	}
	if rep.String() != direct.String() {
		t.Error("Spec.Simulate diverges from resolving and simulating by hand")
	}
	s.FuseHops = []FusePair{{App: 0, Hop: 0}}
	s.BatchWindow = "100us"
	if _, err := s.Simulate(); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("fuse+batch conflict: %v", err)
	}
}

func TestFormatDuration(t *testing.T) {
	for _, want := range []string{"200µs", "30ms", "2µs", "1.5ms"} {
		d, err := ParseDuration(want)
		if err != nil {
			t.Fatal(err)
		}
		if got := FormatDuration(d); got != want {
			t.Errorf("FormatDuration(%s) = %q", want, got)
		}
	}
}
