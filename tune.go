package dmx

import (
	"fmt"
	"strings"

	"dmx/internal/dmxsys"
	"dmx/internal/faults"
	"dmx/internal/tune"
)

// TuneSpec parameterizes an autotuning run: a base experiment plus the
// bounds of the search.
type TuneSpec struct {
	// Base is the experiment to tune. Its workload, traffic, fault
	// plan, and cluster shape are held fixed; its placement,
	// discipline, batch_window, batch_max, admit, retry, and fuse_hops
	// fields are the search axes (their Base values seed the start
	// point).
	Base Spec
	// Placements limits the search to these placement tokens (empty =
	// all six).
	Placements []string
	// MaxRounds caps the coordinate-descent rounds (0 = 4).
	MaxRounds int
}

// TuneCandidate is one evaluated configuration, expressed as the full
// replayable Spec it was simulated from.
type TuneCandidate struct {
	// Spec is the complete experiment document of this candidate.
	Spec Spec
	// Goodput is the objective: SLO-satisfying completions per second
	// of makespan (all completions when Base.SLO is empty).
	Goodput float64
	// P99 is the worst per-app 99th-percentile latency.
	P99 Duration
	// Outcome totals across apps.
	Completed, Missed, Rejected, Abandoned int
	// Round is the descent round that proposed the candidate (0 = the
	// capacity-model seed).
	Round int
	// OK is false for infeasible candidates; Err says why.
	OK  bool
	Err string
}

// TuneResult ranks everything the search evaluated.
type TuneResult struct {
	// Winner is the best configuration found, as a self-contained Spec:
	// SimulateCluster on Winner.Resolve() (or Winner.Simulate())
	// reproduces the winning score exactly.
	Winner Spec
	// Goodput and P99 are the winner's measured score.
	Goodput float64
	P99     Duration
	// Candidates holds every evaluated point, feasible first, best
	// first.
	Candidates []TuneCandidate
	// Evaluations counts full cluster simulations; Rounds counts
	// descent rounds.
	Evaluations, Rounds int
	// SeedPlacement is the placement token the analytic capacity model
	// seeded the search with, and SeedCapacity its summed per-app
	// capacity bound in req/s.
	SeedPlacement string
	SeedCapacity  float64
}

// String renders the result compactly: the winner line, the seed, and
// the top candidates. Deterministic at any sweep worker count.
func (r TuneResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tuned %d candidates in %d round(s), seed %s (capacity bound %.1f req/s)\n",
		r.Evaluations, r.Rounds, r.SeedPlacement, r.SeedCapacity)
	fmt.Fprintf(&b, "winner: %s  goodput %.1f req/s  p99 %v\n", specAxesLine(r.Winner), r.Goodput, r.P99)
	n := len(r.Candidates)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		c := r.Candidates[i]
		if !c.OK {
			fmt.Fprintf(&b, "  #%d %s  infeasible: %s\n", i+1, specAxesLine(c.Spec), c.Err)
			continue
		}
		fmt.Fprintf(&b, "  #%d %s  goodput %.1f req/s  p99 %v\n", i+1, specAxesLine(c.Spec), c.Goodput, c.P99)
	}
	return b.String()
}

// specAxesLine renders only the tunable axes of a spec.
func specAxesLine(s Spec) string {
	placement := s.Placement
	if placement == "" {
		placement = "bump"
	}
	discipline := s.Discipline
	if discipline == "" {
		discipline = "fifo"
	}
	line := fmt.Sprintf("%s/%s", placement, discipline)
	if s.BatchWindow != "" {
		line += fmt.Sprintf(" batch=%s", s.BatchWindow)
		if s.BatchMax > 0 {
			line += fmt.Sprintf("/%d", s.BatchMax)
		}
	}
	if s.Admit > 0 {
		line += fmt.Sprintf(" admit=%d", s.Admit)
	}
	if s.Retry > 0 {
		line += fmt.Sprintf(" retry=%d", s.Retry)
	}
	if len(s.FuseHops) > 0 {
		pairs := make([]string, len(s.FuseHops))
		for i, f := range s.FuseHops {
			pairs[i] = fmt.Sprintf("%d:%d", f.App, f.Hop)
		}
		line += " fuse=" + strings.Join(pairs, ",")
	}
	return line
}

// specWithAxes writes the search axes back into a copy of the base
// spec. It is the single translation between the tuner's coordinates
// and the experiment document, used both to materialize candidates for
// evaluation and to emit the winner — so the winner Spec replays the
// exact configuration the tuner scored, by construction.
func specWithAxes(base Spec, a tune.Axes) Spec {
	s := base
	s.Placement = PlacementToken(a.Placement)
	s.Discipline = a.Sched.String()
	s.BatchWindow = ""
	if a.BatchWindow > 0 {
		s.BatchWindow = FormatDuration(a.BatchWindow)
	}
	s.BatchMax = a.BatchMax
	s.Admit = a.Admit
	s.Retry = a.Retry
	s.FuseHops = nil
	if len(a.Fuse) > 0 {
		s.FuseHops = append([]FusePair(nil), a.Fuse...)
	}
	return s
}

// specStartAxes reads the base spec's axis fields as the search start.
func specStartAxes(base Spec) (tune.Axes, error) {
	var a tune.Axes
	ptok := base.Placement
	if ptok == "" {
		ptok = "bump"
	}
	p, ok := specPlacements[strings.ToLower(ptok)]
	if !ok {
		return a, fmt.Errorf("dmx: tune base placement %q", base.Placement)
	}
	a.Placement = p
	if base.Discipline != "" {
		sched, err := dmxsys.ParseSched(base.Discipline)
		if err != nil {
			return a, err
		}
		a.Sched = sched
	}
	if base.BatchWindow != "" {
		w, err := faults.ParseDuration(base.BatchWindow)
		if err != nil {
			return a, fmt.Errorf("dmx: tune base batch_window: %w", err)
		}
		a.BatchWindow = w
	}
	a.BatchMax = base.BatchMax
	a.Admit = base.Admit
	a.Retry = base.Retry
	a.Fuse = append([]FusePair(nil), base.FuseHops...)
	return a, nil
}

// Tune searches placements, scheduling disciplines, batching windows,
// admission caps, retry budgets, and cross-hop kernel fusion for the
// configuration of ts.Base that maximizes throughput under the SLO.
// The search seeds from the analytic capacity model and refines by
// greedy coordinate descent; every candidate is scored by a full
// deterministic cluster simulation on the sweep worker pool. The result
// is byte-identical at any worker count, and TuneResult.Winner is a
// complete Spec whose replay reproduces the winning numbers exactly.
func Tune(ts TuneSpec) (TuneResult, error) {
	base := ts.Base
	// The base must itself resolve — it fixes the workload, traffic,
	// and fleet shape every candidate shares.
	_, tspec, pipes, err := base.Resolve()
	if err != nil {
		return TuneResult{}, fmt.Errorf("dmx: tune base: %w", err)
	}
	start, err := specStartAxes(base)
	if err != nil {
		return TuneResult{}, err
	}
	var placements []Placement
	for _, tok := range ts.Placements {
		p, ok := specPlacements[strings.ToLower(tok)]
		if !ok {
			return TuneResult{}, fmt.Errorf("dmx: tune placement %q (want one of allcpu, multiaxl, integrated, standalone, pcie, bump)", tok)
		}
		placements = append(placements, p)
	}
	in := tune.Input{
		Materialize: func(a tune.Axes) (FleetConfig, error) {
			fc, _, _, err := specWithAxes(base, a).Resolve()
			return fc, err
		},
		Traffic:    tspec,
		Pipes:      pipes,
		Start:      start,
		Placements: placements,
		MaxRounds:  ts.MaxRounds,
	}
	res, err := tune.Run(in)
	if err != nil {
		return TuneResult{}, err
	}
	out := TuneResult{
		Winner:        specWithAxes(base, res.Winner),
		Goodput:       res.Score.Goodput,
		P99:           res.Score.P99,
		Evaluations:   res.Evaluations,
		Rounds:        res.Rounds,
		SeedPlacement: PlacementToken(res.SeedPlacement),
		SeedCapacity:  res.SeedCapacity,
	}
	out.Candidates = make([]TuneCandidate, len(res.Candidates))
	for i, c := range res.Candidates {
		out.Candidates[i] = TuneCandidate{
			Spec:      specWithAxes(base, c.Axes),
			Goodput:   c.Score.Goodput,
			P99:       c.Score.P99,
			Completed: c.Score.Completed,
			Missed:    c.Score.Missed,
			Rejected:  c.Score.Rejected,
			Abandoned: c.Score.Abandoned,
			Round:     c.Round,
			OK:        c.OK,
			Err:       c.Err,
		}
	}
	return out, nil
}
