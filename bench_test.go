package dmx_test

// The benchmark harness: one testing.B per table and figure of the
// paper's evaluation. Each benchmark regenerates its artifact through
// internal/experiments (the same code path as cmd/dmxbench) and attaches
// the headline series as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation and reports the measured factors
// alongside wall-clock cost. DRX program timings are memoized process-
// wide, so iterations after the first reflect simulation cost only.

import (
	"fmt"
	"testing"

	"dmx/internal/experiments"
)

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 5 {
			b.Fatal("incomplete inventory")
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		last = res.PerKernelSpeedup
	}
	b.ReportMetric(last, "perKernelSpeedup")
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	var res *experiments.Fig11Result
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Fig11(); err != nil {
			b.Fatal(err)
		}
	}
	for _, n := range experiments.Concurrencies {
		b.ReportMetric(res.Average[n], fmt.Sprintf("speedup@%dapps", n))
	}
}

func BenchmarkFig12(b *testing.B) {
	var res *experiments.Fig12Result
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Fig12(); err != nil {
			b.Fatal(err)
		}
	}
	if s, ok := res.Share("Multi-Axl", 15); ok {
		b.ReportMetric(100*s, "baselineRestructPct@15apps")
	}
	if s, ok := res.Share("Bump-in-the-Wire", 15); ok {
		b.ReportMetric(100*s, "dmxRestructPct@15apps")
	}
}

func BenchmarkFig13(b *testing.B) {
	var res *experiments.Fig13Result
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Fig13(); err != nil {
			b.Fatal(err)
		}
	}
	for _, n := range experiments.Concurrencies {
		b.ReportMetric(res.Average[n], fmt.Sprintf("thruImprove@%dapps", n))
	}
}

func BenchmarkFig14(b *testing.B) {
	var res *experiments.Fig14Result
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Fig14(); err != nil {
			b.Fatal(err)
		}
	}
	for p, m := range res.Speedup {
		b.ReportMetric(m[15], p.String()+"@15apps")
	}
}

func BenchmarkFig15(b *testing.B) {
	var res *experiments.Fig15Result
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Fig15(); err != nil {
			b.Fatal(err)
		}
	}
	for p, m := range res.Reduction {
		b.ReportMetric(m[15], "energy:"+p.String()+"@15apps")
	}
}

func BenchmarkFig16(b *testing.B) {
	var res *experiments.Fig16Result
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Fig16(); err != nil {
			b.Fatal(err)
		}
	}
	for _, n := range experiments.Concurrencies {
		b.ReportMetric(res.Speedup[n], fmt.Sprintf("nerSpeedup@%dapps", n))
	}
}

func BenchmarkFig17(b *testing.B) {
	var res *experiments.Fig17Result
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Fig17(); err != nil {
			b.Fatal(err)
		}
	}
	for _, n := range experiments.CollectiveSizes {
		b.ReportMetric(res.Broadcast[n], fmt.Sprintf("broadcast@%d", n))
		b.ReportMetric(res.AllReduce[n], fmt.Sprintf("allreduce@%d", n))
	}
}

func BenchmarkFig18(b *testing.B) {
	var res *experiments.Fig18Result
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Fig18(); err != nil {
			b.Fatal(err)
		}
	}
	for _, lanes := range experiments.LaneSweep {
		b.ReportMetric(res.Speedup[lanes], fmt.Sprintf("speedup@%dlanes", lanes))
	}
}

func BenchmarkFig19(b *testing.B) {
	var res *experiments.Fig19Result
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Fig19(); err != nil {
			b.Fatal(err)
		}
	}
	for _, g := range experiments.GenSweep {
		b.ReportMetric(res.Speedup[g][15], g.String()+"@15apps")
	}
}
