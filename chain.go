package dmx

import (
	"errors"
	"fmt"
)

// ChainBuilder assembles a Pipeline fluently: alternate Kernel and
// Motion calls describe the chain in order, IO sets the request payload
// sizes, and Build validates the result.
//
//	pipe, err := dmx.NewChain("sound").
//	    Kernel(fft, audioBytes).
//	    Motion(melKernel, specBytes, melBytes).
//	    Kernel(svm, melBytes).
//	    IO(audioBytes, labelBytes).
//	    Build()
//
// Every builder error is accumulated, not just the first: Build returns
// them joined (errors.Join), so one round trip surfaces every mistake
// in the chain description. errors.Is works against each individual
// error.
type ChainBuilder struct {
	p    Pipeline
	errs []error
}

// NewChain starts a pipeline with the given name.
func NewChain(name string) *ChainBuilder {
	return &ChainBuilder{p: Pipeline{Name: name}}
}

func (b *ChainBuilder) fail(format string, args ...any) *ChainBuilder {
	b.errs = append(b.errs, fmt.Errorf("dmx: chain %q: "+format, append([]any{b.p.Name}, args...)...))
	return b
}

// Kernel appends an application kernel stage. The first call opens the
// chain; later calls must each follow a Motion hop.
func (b *ChainBuilder) Kernel(spec *AccelSpec, inBytes int64) *ChainBuilder {
	if len(b.p.Stages) != len(b.p.Hops) {
		return b.fail("Kernel after Kernel; add the Motion between them")
	}
	b.p.Stages = append(b.p.Stages, Stage{Accel: spec, InBytes: inBytes})
	return b
}

// Motion appends the data restructuring hop between the previous kernel
// and the next one.
func (b *ChainBuilder) Motion(k *RestructureKernel, inBytes, outBytes int64) *ChainBuilder {
	if len(b.p.Stages) != len(b.p.Hops)+1 {
		return b.fail("Motion without a preceding Kernel")
	}
	b.p.Hops = append(b.p.Hops, Hop{Kernel: k, InBytes: inBytes, OutBytes: outBytes})
	return b
}

// IO sets the request payload shipped to the first kernel and the result
// returned from the last.
func (b *ChainBuilder) IO(inputBytes, outputBytes int64) *ChainBuilder {
	b.p.InputBytes = inputBytes
	b.p.OutputBytes = outputBytes
	return b
}

// Build validates and returns the pipeline. All accumulated builder
// errors are returned joined; the pipeline is nil if any occurred.
func (b *ChainBuilder) Build() (*Pipeline, error) {
	errs := b.errs
	if len(b.p.Stages) == len(b.p.Hops) && len(b.p.Hops) > 0 {
		errs = append(errs, fmt.Errorf("dmx: chain %q ends in a Motion; add the consuming Kernel", b.p.Name))
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	// Deep-copy so neither the builder nor other Build results can
	// mutate the returned pipeline.
	p := b.p
	p.Stages = append([]Stage(nil), b.p.Stages...)
	p.Hops = append([]Hop(nil), b.p.Hops...)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}
