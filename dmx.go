// Package dmx is the public API of the DMX library — a from-scratch
// reproduction of "Data Motion Acceleration: Chaining Cross-Domain Multi
// Accelerators" (HPCA 2024).
//
// DMX chains heterogeneous domain-specific accelerators into end-to-end
// application pipelines and accelerates the *data motion* between them:
// the restructuring computation (layout, dtype, and format conversion)
// and the CPU-mediated copies that chaining otherwise requires. The
// library spans the whole stack the paper describes:
//
//   - a restructuring-kernel IR and library (internal/restructure),
//   - the DRX accelerator: ISA, cycle-level machine, compiler
//     (internal/isa, internal/drx, internal/drxc),
//   - the system model: PCIe fabric, host CPU, drivers, the four DRX
//     placements, and collectives (internal/pcie, internal/cpu,
//     internal/dmxsys),
//   - the five Table I benchmark applications (internal/workload),
//   - and the experiment harness regenerating every table and figure
//     (internal/experiments, cmd/dmxbench).
//
// This package re-exports the pieces a downstream user composes: build a
// Pipeline with NewChain, pick a Config (placement, PCIe generation, DRX
// geometry), and Simulate it to obtain latency, throughput-governing
// stage times, and energy.
package dmx

import (
	"io"

	"dmx/internal/accel"
	"dmx/internal/cluster"
	"dmx/internal/dmxsys"
	"dmx/internal/drx"
	"dmx/internal/faults"
	"dmx/internal/obs"
	"dmx/internal/pcie"
	"dmx/internal/restructure"
	"dmx/internal/sim"
	"dmx/internal/tensor"
	"dmx/internal/traffic"
	"dmx/internal/workload"
)

// Re-exported core types. The aliases are the supported public surface;
// internal packages may gain functionality without breaking users.
type (
	// Placement selects where data restructuring executes (Sec. III).
	Placement = dmxsys.Placement
	// Config parameterizes a simulated server.
	Config = dmxsys.Config
	// Pipeline is one chained application.
	Pipeline = dmxsys.Pipeline
	// Stage is one application kernel in a pipeline.
	Stage = dmxsys.Stage
	// Hop is the data motion between two kernels.
	Hop = dmxsys.Hop
	// RunReport aggregates one simulation.
	RunReport = dmxsys.RunReport
	// AppReport is one application's runtime decomposition.
	AppReport = dmxsys.AppReport
	// AccelSpec describes one accelerator (model + functional kernel).
	AccelSpec = accel.Spec
	// RestructureKernel is a data restructuring program.
	RestructureKernel = restructure.Kernel
	// Tensor is the dense N-d array accelerators exchange.
	Tensor = tensor.Tensor
	// Duration is virtual time (picoseconds).
	Duration = sim.Duration
	// Gen is a PCIe generation.
	Gen = pcie.Gen
	// DRXConfig is the restructuring accelerator's hardware geometry.
	DRXConfig = drx.Config
	// Benchmark is one of the paper's end-to-end applications.
	Benchmark = workload.Benchmark
	// Recorder collects the structured trace of a simulation. Set one on
	// Config.Obs before Simulate, then feed it to WriteTrace or read the
	// Metrics already attached to the RunReport.
	Recorder = obs.Recorder
	// Metrics is the observability aggregate a traced RunReport carries:
	// per-device utilization, per-stage latency histograms, bytes moved.
	Metrics = obs.Metrics
	// TraceEvent is one structured observability event.
	TraceEvent = obs.Event
)

// Placements.
const (
	AllCPU         = dmxsys.AllCPU
	MultiAxl       = dmxsys.MultiAxl
	Integrated     = dmxsys.Integrated
	Standalone     = dmxsys.Standalone
	PCIeIntegrated = dmxsys.PCIeIntegrated
	BumpInTheWire  = dmxsys.BumpInTheWire
)

// PCIe generations.
const (
	Gen3 = pcie.Gen3
	Gen4 = pcie.Gen4
	Gen5 = pcie.Gen5
)

// Virtual-time units for Duration-typed knobs (Duration counts
// picoseconds): cfg.BatchWindow = 200 * dmx.Microsecond.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// DefaultConfig returns the paper's testbed configuration for a
// placement: PCIe Gen3 x16 device links under x8-uplink switches, the
// 128-lane / 64 KB / 1 GHz DRX ASIC, and the calibrated Xeon host.
func DefaultConfig(p Placement) Config { return dmxsys.DefaultConfig(p) }

// DefaultDRX returns the paper's DRX ASIC configuration.
func DefaultDRX() DRXConfig { return drx.DefaultConfig() }

// Unified execution surface. Run is the single entry point behind which
// the three historical front-ends (Simulate, SimulateStream,
// SimulateLoad) are thin wrappers.
type (
	// RunSpec selects and parameterizes the execution mode: a
	// single-request latency run (the zero value), a closed-loop
	// stream, or a traffic-generated load. Build one directly or with
	// SingleSpec/StreamSpec/LoadSpec.
	RunSpec = dmxsys.RunSpec
	// RunMode is the execution front-end selector of a RunSpec.
	RunMode = dmxsys.RunMode
	// Report is Run's union result: exactly one of Single, Stream, or
	// Load is non-nil, matching the spec's mode.
	Report = dmxsys.Report
)

// Execution modes.
const (
	ModeSingle = dmxsys.ModeSingle
	ModeStream = dmxsys.ModeStream
	ModeLoad   = dmxsys.ModeLoad
)

// SingleSpec is a one-request-per-app latency run (the zero RunSpec).
func SingleSpec() RunSpec { return dmxsys.SingleSpec() }

// StreamSpec is a closed-loop run of n requests per app.
func StreamSpec(n int) RunSpec { return dmxsys.StreamSpec(n) }

// LoadSpec is a traffic-driven serving run.
func LoadSpec(spec TrafficSpec) RunSpec { return dmxsys.LoadSpec(spec) }

// Run assembles a fresh system from cfg and the pipelines and executes
// it under the spec, returning the mode's report. It is the unified
// entry point: the zero spec reproduces Simulate, StreamSpec(n)
// reproduces SimulateStream, and LoadSpec(t) reproduces SimulateLoad —
// bit for bit. The same cfg, spec, and pipelines always produce an
// identical report.
func Run(cfg Config, spec RunSpec, pipelines ...*Pipeline) (Report, error) {
	sys, err := dmxsys.New(cfg, pipelines)
	if err != nil {
		return Report{}, err
	}
	return sys.Execute(spec)
}

// Simulate runs one request through every pipeline concurrently on a
// freshly assembled system and returns the aggregated report. It is
// Run with SingleSpec, unwrapped.
func Simulate(cfg Config, pipelines ...*Pipeline) (RunReport, error) {
	rep, err := Run(cfg, SingleSpec(), pipelines...)
	if err != nil {
		return RunReport{}, err
	}
	return *rep.Single, nil
}

// StreamReport aggregates a streamed (back-to-back request) simulation.
type StreamReport = dmxsys.StreamReport

// SimulateStream issues a train of back-to-back requests per pipeline
// and reports measured steady-state throughput (Sec. VII-A's continuous
// arrival assumption). It is Run with StreamSpec(requests), unwrapped.
func SimulateStream(cfg Config, requests int, pipelines ...*Pipeline) (StreamReport, error) {
	rep, err := Run(cfg, StreamSpec(requests), pipelines...)
	if err != nil {
		return StreamReport{}, err
	}
	return *rep.Stream, nil
}

// Serving-layer surface: load generation with explicit arrival
// processes and latency/throughput reporting. Continuous batching
// (Config.BatchWindow/BatchMax), SLO-aware scheduling (Config.Sched =
// SchedEDF/SchedSRS with TrafficSpec deadlines), and admission control
// (Config.AdmitLimit, LoadReport rejection counts) all configure
// through the same Config + TrafficSpec pair.
type (
	// TrafficSpec parameterizes a load run: arrival process (closed,
	// open, Poisson), per-app request rate and count, PRNG seed, and an
	// optional per-request deadline.
	TrafficSpec = traffic.Spec
	// Arrival selects the request generation process.
	Arrival = traffic.Arrival
	// LoadReport summarizes a load run: per-app offered vs achieved
	// throughput and latency quantiles.
	LoadReport = traffic.LoadReport
	// AppLoad is one application's serving summary.
	AppLoad = traffic.AppLoad
	// SchedPolicy selects how contended stations order waiting jobs
	// (Config.Sched): FIFO, priority, weighted-fair round-robin,
	// earliest-deadline-first, or shortest-remaining-service.
	SchedPolicy = dmxsys.SchedPolicy
	// FaultPlan (Config.Faults) injects seeded deterministic failures:
	// DRX unit outages, transient restructure errors, PCIe link
	// degradation/loss, and accelerator stalls. Parse one from a CLI
	// spec with ParseFaultPlan. nil disables injection bit-for-bit.
	FaultPlan = faults.Plan
	// RetryPolicy (Config.Retry) is the recovery side: per-stage
	// watchdog deadline, bounded re-attempts with deterministic
	// exponential backoff, and graceful degradation to CPU-mediated
	// restructuring when a hop's DRX path is unavailable.
	RetryPolicy = faults.RetryPolicy
	// Outcome classifies how one request retired: clean, degraded
	// (completed via CPU fallback), or abandoned.
	Outcome = traffic.Outcome
)

// Arrival processes.
const (
	ClosedLoop = traffic.ClosedLoop
	OpenLoop   = traffic.OpenLoop
	Poisson    = traffic.Poisson
)

// Scheduling policies. SchedEDF and SchedSRS are the SLO-aware
// disciplines: earliest-deadline-first (deadlines from
// TrafficSpec.Deadline/AppDeadlines) and shortest-remaining-service
// (the per-stage occupancy model as the service estimate).
const (
	SchedFIFO     = dmxsys.SchedFIFO
	SchedPriority = dmxsys.SchedPriority
	SchedWFQ      = dmxsys.SchedWFQ
	SchedEDF      = dmxsys.SchedEDF
	SchedSRS      = dmxsys.SchedSRS
)

// Request outcomes.
const (
	OutcomeClean     = traffic.OutcomeClean
	OutcomeDegraded  = traffic.OutcomeDegraded
	OutcomeAbandoned = traffic.OutcomeAbandoned
	OutcomeRejected  = traffic.OutcomeRejected
)

// ParseFaultPlan parses a comma-separated fault spec — e.g.
// "drx=5ms/200us,transient=0.01,link=20ms/1ms/0.25,stall=10ms/500us" —
// into a FaultPlan (the dmxsim -faults syntax).
func ParseFaultPlan(spec string) (*FaultPlan, error) { return faults.ParseSpec(spec) }

// DefaultRetry returns a serving-grade retry policy: three attempts
// with 20 µs exponential backoff (factor 2, 1 ms cap, 25% jitter) and
// no stage watchdog unless a deadline is set explicitly.
func DefaultRetry() RetryPolicy { return faults.DefaultRetry() }

// SimulateLoad drives the pipelines with the spec's arrival process on
// a freshly assembled system and reports per-app offered vs achieved
// throughput, latency quantiles, and failure accounting when faults
// are configured. It is Run with LoadSpec(spec), unwrapped. The same
// cfg, spec, and pipelines always produce an identical report.
func SimulateLoad(cfg Config, spec TrafficSpec, pipelines ...*Pipeline) (LoadReport, error) {
	rep, err := Run(cfg, LoadSpec(spec), pipelines...)
	if err != nil {
		return LoadReport{}, err
	}
	return *rep.Load, nil
}

// Cluster-scale serving surface: N replicas of one Config composed
// into a fleet on a single deterministic engine, joined by a modeled
// network fabric and fronted by a placement- and fault-aware router.
type (
	// FleetConfig composes Hosts replicas of a Base Config (optionally
	// overridden per host) with a network fabric and a cluster router.
	FleetConfig = cluster.FleetConfig
	// NetConfig models the inter-host network: per-host NIC bandwidth,
	// shared core bandwidth, and propagation latency. The zero value
	// disables the fabric.
	NetConfig = cluster.NetConfig
	// RouterConfig parameterizes the fleet's front door: routing policy,
	// per-host admission cap, and fault-aware draining.
	RouterConfig = cluster.RouterConfig
	// RouterPolicy selects how the router assigns arrivals to replicas.
	RouterPolicy = cluster.Policy
)

// Router policies. RouteScore is placement-aware headroom routing
// (capacity bound ÷ outstanding); RouteRR round-robins; RouteLeast
// picks the least-loaded host.
const (
	RouteScore = cluster.PolicyScore
	RouteRR    = cluster.PolicyRR
	RouteLeast = cluster.PolicyLeast
)

// ParseRouterPolicy maps a CLI token ("score", "rr", "least") to a
// router policy (the dmxsim -router syntax).
func ParseRouterPolicy(s string) (RouterPolicy, error) { return cluster.ParsePolicy(s) }

// SimulateCluster builds a fleet from cfg and the pipelines, drives it
// with the spec's arrival process through the cluster router, and rolls
// the per-replica accounting up into one LoadReport that preserves
// per-app tail-latency accounting. A one-host fleet with zero-valued
// network and router configs reproduces SimulateLoad byte for byte; the
// same cfg, spec, and pipelines always produce an identical report at
// any sweep worker count.
func SimulateCluster(cfg FleetConfig, spec TrafficSpec, pipelines ...*Pipeline) (LoadReport, error) {
	f, err := cluster.New(cfg, pipelines)
	if err != nil {
		return LoadReport{}, err
	}
	return f.Run(spec)
}

// NewRecorder returns an empty trace recorder for Config.Obs.
func NewRecorder() *Recorder { return obs.New() }

// WriteTrace renders a recorded event stream as Chrome trace-event JSON
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Output is
// deterministic: the same simulation always produces identical bytes.
func WriteTrace(w io.Writer, rec *Recorder) error {
	return obs.WriteTrace(w, rec.Events())
}

// Suite returns the five Table I benchmark applications at paper scale
// (6–16 MB batches).
func Suite() ([]*Benchmark, error) { return workload.Suite(workload.PaperScale) }

// TestSuite returns the same applications at a miniature scale whose
// functional chains execute in milliseconds.
func TestSuite() ([]*Benchmark, error) { return workload.Suite(workload.TestScale) }
