package dmx_test

import (
	"testing"

	"dmx"
)

func TestSimulateSuiteThroughPublicAPI(t *testing.T) {
	suite, err := dmx.TestSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 5 {
		t.Fatalf("suite has %d benchmarks, want 5", len(suite))
	}
	pipes := make([]*dmx.Pipeline, len(suite))
	for i, b := range suite {
		pipes[i] = b.Pipeline
	}
	base, err := dmx.Simulate(dmx.DefaultConfig(dmx.MultiAxl), pipes...)
	if err != nil {
		t.Fatal(err)
	}
	accel, err := dmx.Simulate(dmx.DefaultConfig(dmx.BumpInTheWire), pipes...)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Apps) != 5 || len(accel.Apps) != 5 {
		t.Fatalf("reports cover %d/%d apps", len(base.Apps), len(accel.Apps))
	}
	for i := range base.Apps {
		if base.Apps[i].Total <= 0 || accel.Apps[i].Total <= 0 {
			t.Errorf("app %d: non-positive totals", i)
		}
	}
}

func TestPublicConfigKnobs(t *testing.T) {
	cfg := dmx.DefaultConfig(dmx.BumpInTheWire)
	cfg.Gen = dmx.Gen5
	cfg.DRX = dmx.DefaultDRX().WithLanes(64)
	suite, err := dmx.TestSuite()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dmx.Simulate(cfg, suite[0].Pipeline)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Placement != dmx.BumpInTheWire {
		t.Errorf("placement %v", rep.Placement)
	}
	if rep.EnergyJ <= 0 {
		t.Error("no energy reported")
	}
}

func TestFunctionalChainsThroughPublicAPI(t *testing.T) {
	suite, err := dmx.TestSuite()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range suite {
		if _, err := b.Exec(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestSimulateStreamThroughPublicAPI(t *testing.T) {
	suite, err := dmx.TestSuite()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dmx.SimulateStream(dmx.DefaultConfig(dmx.BumpInTheWire), 4, suite[1].Pipeline)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerApp) != 1 || rep.PerApp[0].Throughput <= 0 {
		t.Fatalf("bad stream report: %+v", rep)
	}
}

func TestPlacementsExported(t *testing.T) {
	order := []dmx.Placement{dmx.AllCPU, dmx.MultiAxl, dmx.Integrated,
		dmx.Standalone, dmx.PCIeIntegrated, dmx.BumpInTheWire}
	seen := map[string]bool{}
	for _, p := range order {
		s := p.String()
		if s == "" || seen[s] {
			t.Errorf("placement %d has empty/duplicate name %q", int(p), s)
		}
		seen[s] = true
	}
}

func TestSimulateClusterThroughPublicAPI(t *testing.T) {
	suite, err := dmx.TestSuite()
	if err != nil {
		t.Fatal(err)
	}
	pipe := suite[0].Pipeline
	cfg := dmx.DefaultConfig(dmx.BumpInTheWire)
	spec := dmx.TrafficSpec{Arrival: dmx.Poisson, Rate: 3000, Requests: 24, Seed: 2}
	solo, err := dmx.SimulateLoad(cfg, spec, pipe)
	if err != nil {
		t.Fatal(err)
	}
	one, err := dmx.SimulateCluster(dmx.FleetConfig{Hosts: 1, Base: cfg}, spec, pipe)
	if err != nil {
		t.Fatal(err)
	}
	if one.String() != solo.String() {
		t.Errorf("one-host SimulateCluster diverged from SimulateLoad:\n%s\nvs:\n%s", one, solo)
	}
	fleet, err := dmx.SimulateCluster(dmx.FleetConfig{
		Hosts:  4,
		Base:   cfg,
		Net:    dmx.NetConfig{Latency: 2 * dmx.Microsecond},
		Router: dmx.RouterConfig{Policy: dmx.RouteScore},
	}, spec, pipe)
	if err != nil {
		t.Fatal(err)
	}
	if al := fleet.PerApp[0]; al.Completed+al.Abandoned+al.Rejected != spec.Requests {
		t.Errorf("fleet outcomes do not cover all %d requests: %+v", spec.Requests, al)
	}
}
