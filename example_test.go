package dmx_test

import (
	"fmt"

	"dmx"
)

// ExampleNewChain shows the builder's error accumulation: every mistake
// in the chain description comes back from Build in one joined error,
// so a misassembled pipeline is fixed in a single round trip instead of
// one error at a time.
func ExampleNewChain() {
	_, err := dmx.NewChain("broken").
		Motion(nil, 1024, 2048). // no Kernel yet — hop has no producer
		Kernel(nil, 1024).
		Motion(nil, 2048, 4096). // chain left dangling on a Motion
		Build()
	fmt.Println(err)
	// Output:
	// dmx: chain "broken": Motion without a preceding Kernel
	// dmx: chain "broken" ends in a Motion; add the consuming Kernel
}

// ExampleRun drives one benchmark pipeline through the unified entry
// point under Poisson load with seeded fault injection: DRX outages
// degrade hops to CPU-mediated restructuring instead of failing them,
// and the same seed always reproduces the same report.
func ExampleRun() {
	suite, err := dmx.TestSuite()
	if err != nil {
		panic(err)
	}
	cfg := dmx.DefaultConfig(dmx.BumpInTheWire)
	cfg.Faults, err = dmx.ParseFaultPlan("drx=1ms/2ms")
	if err != nil {
		panic(err)
	}
	cfg.Retry = dmx.DefaultRetry()
	rep, err := dmx.Run(cfg, dmx.LoadSpec(dmx.TrafficSpec{
		Arrival:  dmx.Poisson,
		Rate:     4000,
		Requests: 40,
		Seed:     7,
	}), suite[0].Pipeline)
	if err != nil {
		panic(err)
	}
	al := rep.Load.PerApp[0]
	fmt.Printf("issued %d, completed %d\n", al.Requests, al.Completed)
	fmt.Printf("some completions degraded to CPU restructuring: %v\n", al.Degraded > 0)
	fmt.Printf("outages alone never lose a request: %v\n", al.Abandoned == 0)
	// Output:
	// issued 40, completed 40
	// some completions degraded to CPU restructuring: true
	// outages alone never lose a request: true
}

// ExampleRun_continuousBatching turns on the serving layer's continuous
// batching and SLO-aware scheduling: arrivals of one application within
// the batch window coalesce and walk the pipeline as a single unit (one
// kernel launch and one DMA descriptor per leg instead of one per
// request), contended stations order their backlogs
// earliest-deadline-first, and an admission limit bounds each app's
// outstanding requests. Completions still split out per request, so
// latency and deadline accounting stay per-request.
func ExampleRun_continuousBatching() {
	suite, err := dmx.TestSuite()
	if err != nil {
		panic(err)
	}
	cfg := dmx.DefaultConfig(dmx.BumpInTheWire)
	cfg.BatchWindow = 200 * dmx.Microsecond
	cfg.BatchMax = 8
	cfg.Sched = dmx.SchedEDF
	cfg.AdmitLimit = 64
	rep, err := dmx.Run(cfg, dmx.LoadSpec(dmx.TrafficSpec{
		Arrival:  dmx.OpenLoop,
		Rate:     50000,
		Requests: 32,
		Deadline: 80 * dmx.Millisecond,
	}), suite[0].Pipeline)
	if err != nil {
		panic(err)
	}
	al := rep.Load.PerApp[0]
	fmt.Printf("completed %d of %d\n", al.Completed, al.Requests)
	fmt.Printf("batches %d carrying %d requests\n", al.Batches, al.BatchedRequests)
	fmt.Printf("rejected %d\n", al.Rejected)
	// Output:
	// completed 32 of 32
	// batches 4 carrying 32 requests
	// rejected 0
}

// ExampleTune autotunes a two-app serving mix: the search seeds from
// the analytic capacity model, refines placement, scheduling,
// admission, batching, and hop fusion by coordinate descent, and
// returns the winner as a replayable Spec — simulating that document
// reproduces the tuned numbers exactly.
func ExampleTune() {
	res, err := dmx.Tune(dmx.TuneSpec{
		Base: dmx.Spec{
			Apps:     []string{"personal-info-redaction", "sound-detection"},
			Scale:    "test",
			Arrival:  "poisson",
			Rate:     150000,
			Requests: 32,
			Seed:     11,
			SLO:      "100us",
		},
		Placements: []string{"multiaxl", "integrated", "bump"},
		MaxRounds:  2,
	})
	if err != nil {
		panic(err)
	}
	w := res.Winner
	fmt.Printf("tuned: placement=%s discipline=%s admit=%d\n", w.Placement, w.Discipline, w.Admit)

	// Replaying the winner document reproduces the tuner's score.
	rep, err := w.Simulate()
	if err != nil {
		panic(err)
	}
	completed, missed := 0, 0
	for _, a := range rep.PerApp {
		completed += a.Completed
		missed += a.Missed
	}
	goodput := float64(completed-missed) / rep.Makespan.Seconds()
	fmt.Printf("replay matches the tuned goodput: %v\n", goodput == res.Goodput)
	// Output:
	// tuned: placement=integrated discipline=fifo admit=8
	// replay matches the tuned goodput: true
}
