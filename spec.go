package dmx

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"dmx/internal/dmxsys"
	"dmx/internal/faults"
	"dmx/internal/sim"
	"dmx/internal/traffic"
	"dmx/internal/workload"
)

// FusePair names one adjacent hop pair (app, hop) and (app, hop+1)
// whose restructuring kernels compile into a single fused DRX program
// (Config.FuseHops). The leader hop holds its DRX slot across the
// intermediate accelerator stage; the follower resumes in place, saving
// one driver round-trip and the second program launch.
type FusePair = dmxsys.FusePair

// Spec is a complete, serializable experiment: workload selection, host
// configuration, serving knobs, fault plan, traffic, and cluster shape
// in one JSON document. It is the exchange format of the autotuner
// (TuneResult.Winner) and the -spec flag of both CLIs, and it is
// round-trippable: UnmarshalSpec(MarshalSpec(s)) == s.
//
// Zero values mean "the default the CLIs use": empty Scale is paper
// scale, empty Placement is bump-in-the-wire, Gen 0 is PCIe Gen3,
// Copies 0 is one instance per app, Hosts 0 is a single host, empty
// Router is score routing. Durations are strings in Go syntax ("200us",
// "30ms") so documents stay hand-editable.
type Spec struct {
	// Apps selects benchmarks by name (the dmxsim -app names:
	// sound-detection, video-surveillance, brain-stimulation,
	// personal-info-redaction, database-hash-join, pir-ner, genai-rag).
	// Empty means the full Table I suite.
	Apps []string `json:"apps,omitempty"`
	// Scale is "paper" (default) or "test".
	Scale string `json:"scale,omitempty"`
	// Copies is the number of instances of each selected app (default 1).
	Copies int `json:"copies,omitempty"`

	// Placement is the DRX placement token (allcpu, multiaxl,
	// integrated, standalone, pcie, bump). Empty = bump.
	Placement string `json:"placement,omitempty"`
	// Gen is the PCIe generation: 3 (default when 0), 4, or 5.
	Gen int `json:"gen,omitempty"`
	// Lanes overrides the DRX RE lane count (0 keeps the default 128).
	Lanes int `json:"lanes,omitempty"`
	// Discipline is the service discipline token (fifo, priority, wfq,
	// edf, srs). Empty = fifo.
	Discipline string `json:"discipline,omitempty"`
	// BatchWindow enables continuous batching ("200us"; empty = off).
	BatchWindow string `json:"batch_window,omitempty"`
	// BatchMax caps the batch size (0 = uncapped).
	BatchMax int `json:"batch_max,omitempty"`
	// Admit bounds each app's outstanding requests (0 = unlimited).
	Admit int `json:"admit,omitempty"`
	// FuseHops fuses adjacent restructuring hops (mutually exclusive
	// with BatchWindow; needs a shared-DRX placement).
	FuseHops []FusePair `json:"fuse_hops,omitempty"`

	// Faults is a fault-injection spec in the dmxsim -faults syntax
	// ("drx=5ms/200us,transient=0.01"); empty injects nothing.
	Faults string `json:"faults,omitempty"`
	// FaultSeed overrides the fault plan's PRNG seed when nonzero.
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// Retry caps attempts per stage (0 = the default policy of 3
	// whenever Faults, Retry, or Deadline is set).
	Retry int `json:"retry,omitempty"`
	// Deadline arms the per-stage watchdog ("500us"; empty = none).
	Deadline string `json:"deadline,omitempty"`

	// Arrival is the traffic process token (closed, open, poisson).
	// Required by Resolve: a Spec always describes a load run.
	Arrival string `json:"arrival"`
	// Rate is the offered request rate per app in req/s.
	Rate float64 `json:"rate,omitempty"`
	// Requests is the number of requests per app.
	Requests int `json:"requests,omitempty"`
	// Seed drives the Poisson arrival PRNG.
	Seed uint64 `json:"seed,omitempty"`
	// SLO is the per-request latency budget ("30ms"; empty = none).
	SLO string `json:"slo,omitempty"`

	// Hosts is the fleet size (0 or 1 = a single host).
	Hosts int `json:"hosts,omitempty"`
	// Router is the cluster routing policy token (score, rr, least).
	Router string `json:"router,omitempty"`
	// HostAdmit caps outstanding requests per host (0 = unlimited).
	HostAdmit int `json:"host_admit,omitempty"`
	// NetCore is the shared core network bandwidth in bytes/s.
	NetCore float64 `json:"net_core,omitempty"`
	// NetNIC is the per-host NIC bandwidth in bytes/s.
	NetNIC float64 `json:"net_nic,omitempty"`
	// NetLat is the one-way propagation latency ("2us"; empty = none).
	NetLat string `json:"net_lat,omitempty"`
	// Shards is the conservative-parallel lane count (byte-identical
	// output at any value; needs NetLat).
	Shards int `json:"shards,omitempty"`
}

// MarshalSpec renders the spec as deterministic, indented JSON with a
// trailing newline — stable bytes for goldens and version control.
func MarshalSpec(s Spec) ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("dmx: marshaling spec: %w", err)
	}
	return append(b, '\n'), nil
}

// UnmarshalSpec parses a JSON experiment document. Unknown fields are
// errors — a typo'd knob silently reverting to its default would run a
// different experiment than the one written down.
func UnmarshalSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("dmx: parsing spec: %w", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err == nil || len(extra) > 0 {
		return Spec{}, fmt.Errorf("dmx: parsing spec: trailing data after the JSON document")
	}
	return s, nil
}

// specPlacements mirrors the dmxsim -placement tokens.
var specPlacements = map[string]Placement{
	"allcpu":     AllCPU,
	"multiaxl":   MultiAxl,
	"integrated": Integrated,
	"standalone": Standalone,
	"pcie":       PCIeIntegrated,
	"bump":       BumpInTheWire,
}

// PlacementToken maps a placement back to its CLI/spec token.
func PlacementToken(p Placement) string {
	for tok, pl := range specPlacements {
		if pl == p {
			return tok
		}
	}
	return fmt.Sprintf("placement(%d)", int(p))
}

// ParseDuration parses a duration string in the spec's syntax ("200us",
// "30ms") into virtual time.
func ParseDuration(s string) (Duration, error) { return faults.ParseDuration(s) }

// FormatDuration renders a virtual duration in the spec's string syntax
// ("200µs" parses back to the same picosecond count).
func FormatDuration(d Duration) string {
	return time.Duration(d / sim.Nanosecond * sim.Duration(time.Nanosecond)).String()
}

// Resolve validates the spec and expands it into the three values
// SimulateCluster consumes: the fleet configuration, the traffic spec,
// and the pipeline list. The expansion is pure — resolving the same
// spec twice yields configurations that simulate identically — which is
// what makes a TuneResult.Winner replayable.
func (s Spec) Resolve() (FleetConfig, TrafficSpec, []*Pipeline, error) {
	fail := func(err error) (FleetConfig, TrafficSpec, []*Pipeline, error) {
		return FleetConfig{}, TrafficSpec{}, nil, err
	}

	// Workload selection.
	scale := workload.PaperScale
	switch s.Scale {
	case "", "paper":
	case "test":
		scale = workload.TestScale
	default:
		return fail(fmt.Errorf("dmx: spec scale %q (want \"paper\" or \"test\")", s.Scale))
	}
	benches, err := specBenchmarks(s.Apps, scale)
	if err != nil {
		return fail(err)
	}
	copies := s.Copies
	if copies == 0 {
		copies = 1
	}
	if copies < 0 {
		return fail(fmt.Errorf("dmx: spec copies %d is negative", copies))
	}
	pipes := make([]*Pipeline, 0, copies*len(benches))
	for i := 0; i < copies; i++ {
		for _, b := range benches {
			pipes = append(pipes, b.Pipeline)
		}
	}

	// Host configuration.
	ptok := s.Placement
	if ptok == "" {
		ptok = "bump"
	}
	p, ok := specPlacements[strings.ToLower(ptok)]
	if !ok {
		return fail(fmt.Errorf("dmx: spec placement %q (want one of allcpu, multiaxl, integrated, standalone, pcie, bump)", s.Placement))
	}
	cfg := DefaultConfig(p)
	switch s.Gen {
	case 0, 3:
	case 4:
		cfg.Gen = Gen4
	case 5:
		cfg.Gen = Gen5
	default:
		return fail(fmt.Errorf("dmx: spec gen %d (want 3, 4, or 5)", s.Gen))
	}
	if s.Lanes != 0 {
		cfg.DRX = cfg.DRX.WithLanes(s.Lanes)
	}
	if s.Discipline != "" {
		sched, err := dmxsys.ParseSched(s.Discipline)
		if err != nil {
			return fail(err)
		}
		cfg.Sched = sched
	}
	if cfg.Sched == SchedPriority {
		cfg.AppPriority = make([]int, len(pipes))
		for i := range cfg.AppPriority {
			cfg.AppPriority[i] = i
		}
	}
	if s.BatchWindow != "" {
		w, err := faults.ParseDuration(s.BatchWindow)
		if err != nil {
			return fail(fmt.Errorf("dmx: spec batch_window: %w", err))
		}
		cfg.BatchWindow = w
	}
	cfg.BatchMax = s.BatchMax
	cfg.AdmitLimit = s.Admit
	if len(s.FuseHops) > 0 {
		cfg.FuseHops = append([]FusePair(nil), s.FuseHops...)
	}

	// Fault plan and recovery, mirroring the dmxsim flag wiring.
	if s.Faults != "" {
		plan, err := ParseFaultPlan(s.Faults)
		if err != nil {
			return fail(err)
		}
		if s.FaultSeed != 0 {
			plan.Seed = s.FaultSeed
		}
		cfg.Faults = plan
	}
	if s.Faults != "" || s.Retry > 0 || s.Deadline != "" {
		r := DefaultRetry()
		if s.Retry > 0 {
			r.MaxAttempts = s.Retry
		}
		if s.Deadline != "" {
			d, err := faults.ParseDuration(s.Deadline)
			if err != nil {
				return fail(fmt.Errorf("dmx: spec deadline: %w", err))
			}
			r.StageDeadline = d
		}
		cfg.Retry = r
	}

	// Traffic.
	if s.Arrival == "" {
		return fail(fmt.Errorf("dmx: spec needs an arrival process (closed, open, or poisson)"))
	}
	arr, err := traffic.ParseArrival(s.Arrival)
	if err != nil {
		return fail(err)
	}
	ts := TrafficSpec{Arrival: arr, Rate: s.Rate, Requests: s.Requests, Seed: s.Seed}
	if s.SLO != "" {
		d, err := faults.ParseDuration(s.SLO)
		if err != nil {
			return fail(fmt.Errorf("dmx: spec slo: %w", err))
		}
		ts.Deadline = d
	}

	// Cluster shape. Cluster-only knobs on a one-host spec are rejected
	// for the same reason dmxsim rejects the flags: a single host has no
	// inter-host network, so accepting them would report physics the
	// document doesn't contain.
	hosts := s.Hosts
	if hosts == 0 {
		hosts = 1
	}
	if hosts == 1 {
		var bad []string
		if s.NetCore != 0 {
			bad = append(bad, "net_core")
		}
		if s.NetNIC != 0 {
			bad = append(bad, "net_nic")
		}
		if s.NetLat != "" {
			bad = append(bad, "net_lat")
		}
		if s.Shards > 1 || s.Shards < 0 {
			bad = append(bad, "shards")
		}
		if s.HostAdmit != 0 {
			bad = append(bad, "host_admit")
		}
		if len(bad) > 0 {
			return fail(fmt.Errorf("dmx: spec field(s) %s need hosts > 1 (got hosts %d)",
				strings.Join(bad, ", "), s.Hosts))
		}
	}
	fc := FleetConfig{Hosts: hosts, Base: cfg, Shards: s.Shards}
	if s.Router != "" {
		pol, err := ParseRouterPolicy(s.Router)
		if err != nil {
			return fail(err)
		}
		fc.Router.Policy = pol
	}
	fc.Router.HostAdmit = s.HostAdmit
	fc.Net = NetConfig{NICBytesPerSec: s.NetNIC, CoreBytesPerSec: s.NetCore}
	if s.NetLat != "" {
		d, err := faults.ParseDuration(s.NetLat)
		if err != nil {
			return fail(fmt.Errorf("dmx: spec net_lat: %w", err))
		}
		fc.Net.Latency = d
	}
	return fc, ts, pipes, nil
}

// Simulate resolves the spec and runs it through SimulateCluster — the
// one-call replay path for a tuner winner or a saved experiment.
func (s Spec) Simulate() (LoadReport, error) {
	fc, ts, pipes, err := s.Resolve()
	if err != nil {
		return LoadReport{}, err
	}
	return SimulateCluster(fc, ts, pipes...)
}

// specBenchmarks resolves app names at a scale. pir-ner and genai-rag
// live outside the Table I Suite and are constructed on demand.
func specBenchmarks(names []string, sc workload.Scale) ([]*workload.Benchmark, error) {
	suite, err := workload.Suite(sc)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return suite, nil
	}
	byName := make(map[string]*workload.Benchmark, len(suite))
	for _, b := range suite {
		byName[b.Name] = b
	}
	out := make([]*workload.Benchmark, 0, len(names))
	for _, name := range names {
		if b, ok := byName[name]; ok {
			out = append(out, b)
			continue
		}
		var b *workload.Benchmark
		switch name {
		case "pir-ner":
			b, err = workload.PIRWithNER(sc)
		case "genai-rag":
			b, err = workload.GenAIRAG(sc)
		default:
			known := make([]string, 0, len(suite)+2)
			for _, s := range suite {
				known = append(known, s.Name)
			}
			known = append(known, "pir-ner", "genai-rag")
			return nil, fmt.Errorf("dmx: spec app %q (known: %s)", name, strings.Join(known, ", "))
		}
		if err != nil {
			return nil, err
		}
		byName[name] = b
		out = append(out, b)
	}
	return out, nil
}
